//! **GSH** — the paper's GPU Skew-conscious Hash join (§IV-B), end to end
//! on the simulator.
//!
//! Phases (simulated device time recorded per phase):
//!
//! 1. `partition` — two-pass count-then-scatter radix partitioning of both
//!    tables.
//! 2. `detect` — for every *large* R partition (larger than the
//!    shared-memory table capacity), sample ~1 % of its tuples into a
//!    linear-probing table and mark the top-k (k = 3) most frequent keys as
//!    skewed.
//! 3. `split` — divide each large partition (both R and S sides) into
//!    per-skewed-key arrays plus a normal residue.
//! 4. `nm_join` — join all normal partitions/residues with the same kernel
//!    as Gbase's normal path.
//! 5. `skew_join` — one thread block per skewed R tuple streams the
//!    matching skewed S array with coalesced reads/writes and no
//!    synchronization.
//!
//! At zipf ≤ 0.4 no partition is large, phases 2–3 and 5 are no-ops, and
//! GSH degenerates to a Gbase-like partitioned join — exactly the paper's
//! observation that the two are comparable at low skew.

use skewjoin_common::trace::counter;
use skewjoin_common::{JoinError, JoinStats, OutputSink, Relation, SinkFactory};

use crate::config::GpuJoinConfig;
use crate::nmjoin::{NmJoinKernel, NmTask};
use crate::pack::upload_relation;
use crate::partition::{gpu_partition, PartitionStyle};
use crate::skew::{detect_skew, split_large_partition, SkewJoinKernel, SkewOutputTask};
use crate::{aggregate_sinks, record_launches, GpuJoinOutcome};

/// Runs the GSH join on a fresh backend selected by `cfg.backend` (the
/// simulator by default). `factory` builds the per-SM-slot output sinks;
/// any `Fn(usize) -> S + Sync` closure works through the blanket
/// [`SinkFactory`] impl.
///
/// ```
/// use skewjoin_common::{CountingSink, Relation};
/// use skewjoin_datagen::{PaperWorkload, WorkloadSpec};
/// use skewjoin_gpu::{gsh_join, GpuJoinConfig};
///
/// let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 12, 0.9, 42));
/// let out = gsh_join(&w.r, &w.s, &GpuJoinConfig::default(), |_| {
///     CountingSink::new()
/// })
/// .unwrap();
/// assert!(out.stats.result_count > 0);
/// // Simulated time, derived from modeled cycles:
/// assert!(out.stats.simulated_cycles > 0);
/// ```
pub fn gsh_join<F: SinkFactory>(
    r: &Relation,
    s: &Relation,
    cfg: &GpuJoinConfig,
    factory: F,
) -> Result<GpuJoinOutcome<F::Sink>, JoinError> {
    cfg.validate()?;
    let mut backend = cfg.backend.create(&cfg.spec)?;
    let backend = backend.as_mut();
    let mut stats = JoinStats::new("GSH");

    let r_buf = upload_relation(backend, r, "table R")?;
    let s_buf = upload_relation(backend, s, "table S")?;

    let radix = cfg.derived_radix(r.len().max(s.len()).max(1));
    let capacity = cfg.derived_table_capacity();

    // ---- Phase 1: count-then-scatter partitioning. ----
    let c0 = backend.total_cycles();
    let l0 = backend.launch_log().len();
    let parted_r = gpu_partition(
        backend,
        r_buf,
        &radix,
        PartitionStyle::CountScatter,
        cfg.block_dim,
    )?;
    let parted_s = gpu_partition(
        backend,
        s_buf,
        &radix,
        PartitionStyle::CountScatter,
        cfg.block_dim,
    )?;
    stats.phases.record(
        "partition",
        backend
            .spec()
            .cycles_to_duration(backend.total_cycles() - c0),
    );
    stats.partitions = parted_r.partitions();
    record_launches(&mut stats.trace, "partition", &backend.launch_log()[l0..]);
    stats
        .trace
        .set("partition", counter::TUPLES_IN, (r.len() + s.len()) as u64);
    let parted_out: usize = (0..parted_r.partitions())
        .map(|p| parted_r.size(p) + parted_s.size(p))
        .sum();
    stats
        .trace
        .set("partition", counter::TUPLES_OUT, parted_out as u64);
    stats.trace.set(
        "partition",
        counter::PARTITIONS,
        parted_r.partitions() as u64,
    );

    // ---- Phase 2: detect skewed keys in large partitions. ----
    let c1 = backend.total_cycles();
    let l1 = backend.launch_log().len();
    let large_pids: Vec<usize> = (0..parted_r.partitions())
        .filter(|&p| parted_r.size(p) > capacity)
        .collect();
    let detected = detect_skew(backend, &parted_r, &large_pids, &cfg.skew, cfg.block_dim)?;
    stats.phases.record(
        "detect",
        backend
            .spec()
            .cycles_to_duration(backend.total_cycles() - c1),
    );
    stats.skewed_keys_detected = detected.iter().map(|d| d.keys.len()).sum();
    record_launches(&mut stats.trace, "detect", &backend.launch_log()[l1..]);
    stats.trace.set(
        "detect",
        counter::SKEWED_KEYS,
        stats.skewed_keys_detected as u64,
    );
    for d in &detected {
        for (&key, &freq) in d.keys.iter().zip(&d.freqs) {
            stats.trace.record_skewed_key(key, freq);
        }
    }

    // ---- Phase 3: split large partitions (both sides, same key lists). ----
    let c2 = backend.total_cycles();
    let l2 = backend.launch_log().len();
    let mut splits = Vec::new();
    for d in &detected {
        if d.keys.is_empty() {
            continue; // large but no skewed key found: NM sub-lists handle it
        }
        let r_split = split_large_partition(
            backend,
            &parted_r,
            d.pid,
            &d.keys,
            cfg.block_dim,
            "gsh_split_r",
        )?;
        let s_split = split_large_partition(
            backend,
            &parted_s,
            d.pid,
            &d.keys,
            cfg.block_dim,
            "gsh_split_s",
        )?;
        splits.push((r_split, s_split));
    }
    stats.phases.record(
        "split",
        backend
            .spec()
            .cycles_to_duration(backend.total_cycles() - c2),
    );
    record_launches(&mut stats.trace, "split", &backend.launch_log()[l2..]);
    let split_in: usize = splits.iter().map(|(rs, _)| parted_r.size(rs.pid)).sum();
    let split_s_in: usize = splits.iter().map(|(_, ss)| parted_s.size(ss.pid)).sum();
    stats
        .trace
        .set("split", counter::TUPLES_IN, (split_in + split_s_in) as u64);
    let split_out: usize = splits
        .iter()
        .map(|(rs, ss)| {
            rs.norm_len
                + rs.skew_starts.last().copied().unwrap_or(0)
                + ss.norm_len
                + ss.skew_starts.last().copied().unwrap_or(0)
        })
        .sum();
    stats
        .trace
        .set("split", counter::TUPLES_OUT, split_out as u64);

    // ---- Phase 4: NM-join over normal partitions and residues. ----
    let c3 = backend.total_cycles();
    let l3 = backend.launch_log().len();
    let split_pids: std::collections::HashSet<usize> =
        splits.iter().map(|(rs, _)| rs.pid).collect();
    let mut tasks: Vec<NmTask> = Vec::new();
    for pid in 0..parted_r.partitions() {
        if split_pids.contains(&pid) {
            continue;
        }
        push_pair_tasks(
            &mut tasks,
            parted_r.buf,
            parted_r.range(pid),
            parted_s.buf,
            parted_s.range(pid),
            capacity,
        );
    }
    for (r_split, s_split) in &splits {
        push_pair_tasks(
            &mut tasks,
            r_split.norm_buf,
            0..r_split.norm_len,
            s_split.norm_buf,
            0..s_split.norm_len,
            capacity,
        );
    }
    tasks.sort_by_key(|t| std::cmp::Reverse(t.r_range.len() + t.s_range.len()));
    let mut sinks: Vec<F::Sink> = (0..backend.spec().num_sms)
        .map(|slot| factory.make_sink(slot))
        .collect();
    if !tasks.is_empty() {
        let mut kernel = NmJoinKernel::new(&tasks, &mut sinks);
        backend.launch("gsh_nm_join", tasks.len(), cfg.block_dim, &mut kernel)?;
    }
    stats.phases.record(
        "nm_join",
        backend
            .spec()
            .cycles_to_duration(backend.total_cycles() - c3),
    );
    let nm_results: u64 = sinks.iter().map(|s| s.count()).sum();
    record_launches(&mut stats.trace, "nm_join", &backend.launch_log()[l3..]);
    stats
        .trace
        .set("nm_join", counter::TASKS_RUN, tasks.len() as u64);
    let build: usize = tasks.iter().map(|t| t.r_range.len()).sum();
    let probe: usize = tasks.iter().map(|t| t.s_range.len()).sum();
    stats
        .trace
        .set("nm_join", counter::BUILD_TUPLES, build as u64);
    stats
        .trace
        .set("nm_join", counter::PROBE_TUPLES, probe as u64);
    stats.trace.set("nm_join", counter::RESULTS, nm_results);

    // ---- Phase 5: dedicated skew output (one block per skewed R tuple). ----
    let c4 = backend.total_cycles();
    let l4 = backend.launch_log().len();
    let mut skew_tasks: Vec<SkewOutputTask> = Vec::new();
    for (r_split, s_split) in &splits {
        for (ki, &key) in r_split.keys.iter().enumerate() {
            let r_lo = r_split.skew_starts[ki];
            let r_hi = r_split.skew_starts[ki + 1];
            let s_lo = s_split.skew_starts[ki];
            let s_hi = s_split.skew_starts[ki + 1];
            if r_lo == r_hi || s_lo == s_hi {
                continue;
            }
            for i in r_lo..r_hi {
                skew_tasks.push(SkewOutputTask {
                    key,
                    r_word: backend.host_read(r_split.skew_buf, i),
                    s_buf: s_split.skew_buf,
                    s_range: s_lo..s_hi,
                });
            }
        }
    }
    if !skew_tasks.is_empty() {
        let mut kernel = SkewJoinKernel {
            tasks: &skew_tasks,
            sinks: &mut sinks,
        };
        backend.launch(
            "gsh_skew_join",
            skew_tasks.len(),
            cfg.block_dim,
            &mut kernel,
        )?;
    }
    stats.phases.record(
        "skew_join",
        backend
            .spec()
            .cycles_to_duration(backend.total_cycles() - c4),
    );
    record_launches(&mut stats.trace, "skew_join", &backend.launch_log()[l4..]);
    stats
        .trace
        .set("skew_join", counter::TASKS_RUN, skew_tasks.len() as u64);

    stats.simulated_cycles = backend.total_cycles();
    let timeline = backend.render_timeline();
    aggregate_sinks(&mut stats, &sinks);
    stats.skew_path_results = stats.result_count - nm_results;
    stats
        .trace
        .set("skew_join", counter::RESULTS, stats.skew_path_results);
    Ok(GpuJoinOutcome {
        stats,
        sinks,
        timeline,
    })
}

/// Adds NM tasks for one (R range, S range) pair, chunking the R side to
/// the table capacity.
fn push_pair_tasks(
    tasks: &mut Vec<NmTask>,
    r_buf: skewjoin_gpu_sim::BufferId,
    r_range: std::ops::Range<usize>,
    s_buf: skewjoin_gpu_sim::BufferId,
    s_range: std::ops::Range<usize>,
    capacity: usize,
) {
    if r_range.is_empty() || s_range.is_empty() {
        return;
    }
    let mut sub = r_range.start;
    while sub < r_range.end {
        let sub_end = (sub + capacity).min(r_range.end);
        tasks.push(NmTask {
            r_buf,
            r_range: sub..sub_end,
            s_buf,
            s_range: s_range.clone(),
        });
        sub = sub_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skewjoin_common::{CountingSink, Tuple};
    use skewjoin_cpu::reference_join;
    use skewjoin_datagen::{PaperWorkload, WorkloadSpec};
    use skewjoin_gpu_sim::DeviceSpec;

    fn small_cfg() -> GpuJoinConfig {
        GpuJoinConfig {
            spec: DeviceSpec::tiny(1 << 26),
            block_dim: 64,
            ..GpuJoinConfig::default()
        }
    }

    fn assert_matches_reference(r: &Relation, s: &Relation, cfg: &GpuJoinConfig) -> JoinStats {
        let outcome = gsh_join(r, s, cfg, |_| CountingSink::new()).unwrap();
        let mut reference = CountingSink::new();
        let ref_stats = reference_join(r, s, &mut reference);
        assert_eq!(outcome.stats.result_count, ref_stats.result_count);
        assert_eq!(outcome.stats.checksum, ref_stats.checksum);
        outcome.stats
    }

    #[test]
    fn matches_reference_across_skews() {
        for zipf in [0.0, 0.6, 0.9, 1.0] {
            let w = PaperWorkload::generate(WorkloadSpec::paper(4096, zipf, 41));
            assert_matches_reference(&w.r, &w.s, &small_cfg());
        }
    }

    #[test]
    fn low_skew_never_triggers_skew_path() {
        let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 0.2, 43));
        let stats = assert_matches_reference(&w.r, &w.s, &small_cfg());
        assert_eq!(stats.skewed_keys_detected, 0);
        assert_eq!(stats.skew_path_results, 0);
        assert_eq!(stats.phases.get("skew_join"), std::time::Duration::ZERO);
    }

    #[test]
    fn heavy_skew_routes_output_through_skew_phase() {
        // One key holds half of each table: must dominate the output and be
        // handled by the skew phase.
        let mut keys: Vec<u32> = vec![77; 4096];
        keys.extend((0..4096u32).map(|i| i * 3 + 1));
        let r = Relation::from_keys(&keys);
        let s = Relation::from_keys(&keys);
        let stats = assert_matches_reference(&r, &s, &small_cfg());
        assert!(stats.skewed_keys_detected >= 1);
        assert!(
            stats.skew_output_fraction() > 0.9,
            "skew fraction {}",
            stats.skew_output_fraction()
        );
    }

    #[test]
    fn single_key_tables() {
        let r = Relation::from_tuples(vec![Tuple::new(5, 1); 2000]);
        let s = Relation::from_tuples(vec![Tuple::new(5, 2); 2000]);
        let stats = assert_matches_reference(&r, &s, &small_cfg());
        assert_eq!(stats.result_count, 4_000_000);
    }

    #[test]
    fn empty_inputs() {
        let cfg = small_cfg();
        let e = Relation::new();
        let r = Relation::from_keys(&[1, 2, 3]);
        assert_eq!(
            gsh_join(&e, &r, &cfg, |_| CountingSink::new())
                .unwrap()
                .stats
                .result_count,
            0
        );
        assert_eq!(
            gsh_join(&r, &e, &cfg, |_| CountingSink::new())
                .unwrap()
                .stats
                .result_count,
            0
        );
    }

    #[test]
    fn gsh_beats_gbase_at_high_skew() {
        // At A100 scale (108 SMs, 48 KB shared) the hot partition exceeds
        // the table capacity, Gbase pays the sub-list re-probe + sync storm
        // and GSH's block-per-R-tuple phase spreads across the SMs.
        let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 14, 1.0, 47));
        let cfg = GpuJoinConfig::default();
        let gsh = gsh_join(&w.r, &w.s, &cfg, |_| CountingSink::new()).unwrap();
        let gbase = crate::gbase::gbase_join(&w.r, &w.s, &cfg, |_| CountingSink::new()).unwrap();
        assert_eq!(gsh.stats.result_count, gbase.stats.result_count);
        assert_eq!(gsh.stats.checksum, gbase.stats.checksum);
        assert!(
            gbase.stats.simulated_cycles > gsh.stats.simulated_cycles * 2,
            "Gbase {} cycles vs GSH {}",
            gbase.stats.simulated_cycles,
            gsh.stats.simulated_cycles
        );
    }

    #[test]
    fn all_phases_recorded() {
        let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 0.5, 53));
        let out = gsh_join(&w.r, &w.s, &small_cfg(), |_| CountingSink::new()).unwrap();
        for phase in ["partition", "detect", "split", "nm_join", "skew_join"] {
            assert!(
                out.stats.phases.iter().any(|(n, _)| n == phase),
                "missing {phase}"
            );
        }
        assert!(out.stats.simulated_cycles > 0);
    }
}
