//! Feature-gated seam for a real GPU device (`--features real-device`).
//!
//! No driver ships in-tree — constructing [`RealBackend`] always returns
//! [`JoinError::BackendUnavailable`] — but the module pins down *where* a
//! Vulkan/krnl-style backend plugs in and what it must provide, so the
//! compile-time shape is checked by the CI feature matrix today:
//!
//! * **Buffers** — [`GpuBackend::alloc`]/`free`/`host_upload`/`host_read`
//!   map onto `VkBuffer` (or krnl's `Buffer<u64>`) plus staging transfers.
//!   `BufferId` stays the portable handle; the backend owns the
//!   id → device-buffer table.
//! * **Launches** — [`GpuBackend::launch`] compiles each named kernel to a
//!   compute pipeline (SPIR-V; with krnl, a `#[kernel]` fn per
//!   `DeviceKernel` implementor), binds the buffer table as a descriptor
//!   set, dispatches `grid_blocks` workgroups of `block_dim` invocations,
//!   and fences. The [`BlockOps`] cost hooks (`charge_*`, `account_*`,
//!   `alu`) compile to nothing on hardware — real time comes from
//!   timestamp queries, reported via [`LaunchStats::device_cycles`].
//! * **Limits** — [`GpuBackendKind::effective_spec`] is where queried
//!   device limits (`maxComputeSharedMemorySize`,
//!   `maxComputeWorkGroupSize`, heap size) replace the configured
//!   [`DeviceSpec`], so `GpuJoinConfig::validate` checks against what the
//!   hardware actually enforces.
//! * **Block-order contract** — the sequential block-index-order guarantee
//!   of the sim/host backends does NOT hold on hardware. Kernels that rely
//!   on it (the split/scatter cursor kernels) must switch to their
//!   atomic-cursor variants, which is why the cursor layout is already
//!   per-block in global memory rather than captured host state.
//!
//! [`GpuBackendKind::effective_spec`]: super::GpuBackendKind::effective_spec

use skewjoin_common::JoinError;
use skewjoin_gpu_sim::{BufferId, DeviceSpec, LaunchStats};

use super::{DeviceKernel, GpuBackend, GpuBackendKind};

#[cfg(doc)]
use super::BlockOps;

/// Placeholder for a hardware-backed [`GpuBackend`]. Unconstructible until a
/// device driver lands; [`RealBackend::create`] reports the backend as
/// unavailable with a pointer to this seam.
pub struct RealBackend {
    _unconstructible: std::convert::Infallible,
}

impl RealBackend {
    /// Attempts to open a real device. Always fails in this build: the
    /// `real-device` feature only reserves the seam.
    pub fn create(_spec: DeviceSpec) -> Result<Self, JoinError> {
        Err(JoinError::BackendUnavailable(
            "real-device backend is a stub: no GPU driver is linked into this build \
             (see crates/gpu/src/backend/real.rs for the Vulkan/krnl seam)"
                .to_string(),
        ))
    }
}

impl GpuBackend for RealBackend {
    fn kind(&self) -> GpuBackendKind {
        GpuBackendKind::Real
    }

    fn spec(&self) -> &DeviceSpec {
        match self._unconstructible {}
    }

    fn alloc(
        &mut self,
        _len: usize,
        _elem_bytes: usize,
        _label: &str,
    ) -> Result<BufferId, JoinError> {
        match self._unconstructible {}
    }

    fn free(&mut self, _buf: BufferId) {
        match self._unconstructible {}
    }

    fn buffer_len(&self, _buf: BufferId) -> usize {
        match self._unconstructible {}
    }

    fn host_upload(&mut self, _buf: BufferId, _offset: usize, _values: &[u64]) {
        match self._unconstructible {}
    }

    fn host_read(&self, _buf: BufferId, _idx: usize) -> u64 {
        match self._unconstructible {}
    }

    fn host_write(&mut self, _buf: BufferId, _idx: usize, _value: u64) {
        match self._unconstructible {}
    }

    fn host_slice(&self, _buf: BufferId) -> &[u64] {
        match self._unconstructible {}
    }

    fn launch(
        &mut self,
        _name: &str,
        _grid_blocks: usize,
        _block_dim: usize,
        _kernel: &mut dyn DeviceKernel,
    ) -> Result<LaunchStats, JoinError> {
        match self._unconstructible {}
    }

    fn total_cycles(&self) -> u64 {
        match self._unconstructible {}
    }

    fn launch_log(&self) -> &[LaunchStats] {
        match self._unconstructible {}
    }

    fn render_timeline(&self) -> String {
        match self._unconstructible {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_reports_backend_unavailable() {
        match RealBackend::create(DeviceSpec::tiny(1 << 20)) {
            Err(JoinError::BackendUnavailable(msg)) => {
                assert!(msg.contains("stub"), "{msg}");
            }
            Err(e) => panic!("stub backend must refuse with BackendUnavailable, got {e}"),
            Ok(_) => panic!("stub backend must not construct"),
        }
    }
}
