//! The pluggable GPU execution backend.
//!
//! The join drivers (`gbase_join`, `gsh_join`) and their kernels never talk
//! to a concrete device. Kernels implement [`DeviceKernel`] against the
//! [`BlockOps`] surface — exactly the warp-level operations the Gbase/GSH
//! kernels use: warp gather/scatter, shared-memory allocation and atomics,
//! barriers, and the analytic cost-charging hooks. Drivers allocate buffers
//! and launch kernels through [`GpuBackend`]. Two implementations ship
//! in-tree:
//!
//! * [`SimBackend`] — the gpu-sim cost model (default). Deterministic,
//!   CI-safe, produces real results *and* modeled cycles. All `charge_*` /
//!   `account_*` calls feed the simulator's per-block metrics, so cycle
//!   counts are bit-identical to the pre-trait code.
//! * [`HostBackend`] — executes the *same* kernel code on the host with no
//!   cycle accounting. Every cost hook is a no-op; data movement, shared
//!   budget enforcement, launch validation, and failpoints are real. Because
//!   kernel control flow only observes geometry (block/warp shape, shared
//!   budget) and data, a sim run and a host run of the same join must
//!   produce identical per-key results — the differential oracle exercised
//!   by the backend-parity tests.
//! * `RealBackend` (feature `real-device`) — a stub documenting the
//!   Vulkan/krnl-shaped seam for actual hardware; constructing it returns
//!   [`JoinError::BackendUnavailable`].
//!
//! Backend selection flows through
//! [`GpuJoinConfig::backend`](crate::GpuJoinConfig), the planner's
//! plan-cache key, and the degradation ladder, which records which backend
//! ran.

use skewjoin_common::JoinError;
use skewjoin_gpu_sim::{BufferId, DeviceSpec, LaunchStats};

pub mod host;
#[cfg(feature = "real-device")]
pub mod real;
pub mod sim;

pub use host::HostBackend;
pub use sim::SimBackend;

/// Which [`GpuBackend`] implementation a join should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GpuBackendKind {
    /// The gpu-sim cost model: real results, modeled cycles (default).
    #[default]
    Sim,
    /// Host execution of the same kernels: real results, no cycle model.
    /// The differential oracle against `Sim`.
    Host,
    /// A real device (Vulkan/krnl seam). Stub: construction fails with
    /// [`JoinError::BackendUnavailable`] until a driver lands.
    #[cfg(feature = "real-device")]
    Real,
}

impl GpuBackendKind {
    /// Stable lowercase name, used in degradation-ladder entries, the
    /// plan-cache key display, and fuzz-case serialization.
    pub fn name(self) -> &'static str {
        match self {
            GpuBackendKind::Sim => "sim",
            GpuBackendKind::Host => "host",
            #[cfg(feature = "real-device")]
            GpuBackendKind::Real => "real",
        }
    }

    /// The device limits this backend would actually enforce for a join
    /// configured with `configured`. `Sim` and `Host` both honor the
    /// configured spec verbatim — `Host` deliberately enforces the same
    /// shared-memory and global-memory budgets so kernel control flow (and
    /// therefore results) cannot diverge from the simulator. A real-device
    /// backend would substitute limits queried from the driver here, which
    /// is why [`crate::GpuJoinConfig::validate`] checks against this spec
    /// rather than the configured one.
    pub fn effective_spec(self, configured: &DeviceSpec) -> DeviceSpec {
        match self {
            GpuBackendKind::Sim | GpuBackendKind::Host => configured.clone(),
            #[cfg(feature = "real-device")]
            GpuBackendKind::Real => configured.clone(),
        }
    }

    /// Builds the backend for this kind over `spec`.
    pub fn create(self, spec: &DeviceSpec) -> Result<Box<dyn GpuBackend>, JoinError> {
        match self {
            GpuBackendKind::Sim => Ok(Box::new(SimBackend::new(spec.clone()))),
            GpuBackendKind::Host => Ok(Box::new(HostBackend::new(spec.clone()))),
            #[cfg(feature = "real-device")]
            GpuBackendKind::Real => {
                real::RealBackend::create(spec.clone()).map(|b| Box::new(b) as Box<dyn GpuBackend>)
            }
        }
    }
}

impl std::fmt::Display for GpuBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Handle to a per-block shared-memory region allocated through
/// [`BlockOps::shared_alloc`]. Opaque; each backend maps it onto its own
/// allocation bookkeeping (allocation order within a block is the identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedRegion(pub(crate) usize);

/// The per-block operation surface the GPU join kernels are written
/// against: block identity, costed global/shared memory operations, and the
/// analytic cost-charging hooks. On [`SimBackend`] every method both
/// executes and charges modeled cycles; on [`HostBackend`] the `charge_*` /
/// `account_*` methods are no-ops and only the data movement happens.
pub trait BlockOps {
    /// Index of this block within the grid.
    fn block_idx(&self) -> usize;
    /// Threads in this block (a multiple of the warp size).
    fn block_dim(&self) -> usize;
    /// The SM slot this block was dispatched to (stable across a launch;
    /// used for per-SM resources such as output-sink pools).
    fn sm_slot(&self) -> usize;
    /// Warp width.
    fn warp_size(&self) -> usize;
    /// The block's shared-memory budget in bytes.
    fn shared_mem_per_block(&self) -> usize;
    /// Shared-memory bytes currently allocated in this block.
    fn shared_used(&self) -> usize;

    /// Allocates a zeroed shared region; `None` if over budget.
    fn try_shared_alloc(&mut self, len: usize, elem_bytes: usize) -> Option<SharedRegion>;
    /// Like [`BlockOps::try_shared_alloc`] but panics on exhaustion (the
    /// launch boundary converts the panic into a typed error).
    fn shared_alloc(&mut self, len: usize, elem_bytes: usize) -> SharedRegion;
    /// Warp-wide shared-memory atomic add; old values into `out`.
    fn shared_atomic_add(&mut self, region: SharedRegion, ops: &[(usize, u64)], out: &mut Vec<u64>);

    /// Warp-wide gather from a global buffer into `out`.
    fn warp_gather(&mut self, buf: BufferId, indices: &[usize], out: &mut Vec<u64>);
    /// Warp-wide scatter of `(index, value)` pairs into a global buffer.
    fn warp_scatter(&mut self, buf: BufferId, writes: &[(usize, u64)]);
    /// Un-costed element read for a run already accounted via
    /// [`BlockOps::account_contiguous_read`].
    fn read_run(&self, buf: BufferId, idx: usize) -> u64;
    /// Accounts a fully coalesced contiguous read of `len` elements.
    fn account_contiguous_read(&mut self, buf: BufferId, len: usize);
    /// Accounts a coalesced byte stream with no backing buffer (e.g. the
    /// block's output ring).
    fn account_stream_bytes(&mut self, bytes: u64);

    /// `__syncthreads()` — block-wide barrier.
    fn syncthreads(&mut self);
    /// Charges `n` warp-wide ALU instructions.
    fn alu(&mut self, n: u64);
    /// Charges `count` conflict-free warp-wide shared accesses.
    fn charge_shared_accesses(&mut self, count: u64);
    /// Charges `count` shared atomics serialized over `serialization` lanes.
    fn charge_shared_atomics(&mut self, count: u64, serialization: u64);
    /// Charges `count` global atomics serialized over `serialization` lanes.
    fn charge_global_atomics(&mut self, count: u64, serialization: u64);
    /// Charges `count` additional serialized shared-atomic lane retirements.
    fn charge_atomic_serial_lanes(&mut self, count: u64);
    /// Charges `count` block barriers.
    fn charge_syncs(&mut self, count: u64);
    /// Charges `count` warp votes.
    fn charge_ballots(&mut self, count: u64);
    /// Records divergence waste directly (diagnostic).
    fn charge_divergence_waste(&mut self, cycles: u64);
}

/// A backend-portable GPU kernel: `block` is invoked once per thread block,
/// in block-index order, against whichever [`BlockOps`] the backend
/// provides.
pub trait DeviceKernel {
    /// Executes one thread block's work against `ctx`.
    fn block(&mut self, ctx: &mut dyn BlockOps);
}

/// A GPU execution backend: global-memory management plus kernel launches.
///
/// The contract every implementation upholds (and the parity tests verify):
///
/// * `alloc` fails with [`JoinError::GpuResourceExhausted`] naming `label`
///   when the device is out of memory (or the `gpu.memory.alloc` failpoint
///   fires).
/// * `launch` validates the grid/block shape identically to
///   [`skewjoin_gpu_sim::validate_launch_config`], honors the `gpu.launch`
///   failpoint, runs blocks **sequentially in block-index order** (kernels
///   may carry cross-block state such as host-precomputed scatter cursors),
///   and converts a block panic into `GpuResourceExhausted` (shared-memory
///   exhaustion) or `WorkerPanicked` (anything else). A failed launch is not
///   logged and leaves the backend usable.
pub trait GpuBackend {
    /// Which implementation this is.
    fn kind(&self) -> GpuBackendKind;
    /// The device limits this backend enforces.
    fn spec(&self) -> &DeviceSpec;

    /// Allocates a zeroed global buffer of `len` elements of `elem_bytes`
    /// (4 or 8). `label` names the allocation in the out-of-memory error.
    fn alloc(&mut self, len: usize, elem_bytes: usize, label: &str) -> Result<BufferId, JoinError>;
    /// Frees a buffer, returning its bytes to the pool.
    fn free(&mut self, buf: BufferId);
    /// Length of a buffer in elements.
    fn buffer_len(&self, buf: BufferId) -> usize;

    /// Host upload of a slice starting at `offset` (un-costed).
    fn host_upload(&mut self, buf: BufferId, offset: usize, values: &[u64]);
    /// Host read of one element (un-costed).
    fn host_read(&self, buf: BufferId, idx: usize) -> u64;
    /// Host write of one element (un-costed).
    fn host_write(&mut self, buf: BufferId, idx: usize, value: u64);
    /// Host view of a buffer's contents (un-costed).
    fn host_slice(&self, buf: BufferId) -> &[u64];

    /// Launches `kernel` over `grid_blocks` blocks of `block_dim` threads.
    fn launch(
        &mut self,
        name: &str,
        grid_blocks: usize,
        block_dim: usize,
        kernel: &mut dyn DeviceKernel,
    ) -> Result<LaunchStats, JoinError>;

    /// Total modeled cycles across all launches (0 for backends that do not
    /// model time).
    fn total_cycles(&self) -> u64;
    /// The launch history.
    fn launch_log(&self) -> &[LaunchStats];
    /// Human-readable launch timeline.
    fn render_timeline(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_defaults_to_sim_and_names_are_stable() {
        assert_eq!(GpuBackendKind::default(), GpuBackendKind::Sim);
        assert_eq!(GpuBackendKind::Sim.name(), "sim");
        assert_eq!(GpuBackendKind::Host.name(), "host");
        assert_eq!(GpuBackendKind::Host.to_string(), "host");
    }

    #[test]
    fn create_builds_the_requested_backend() {
        let spec = DeviceSpec::tiny(1 << 20);
        for kind in [GpuBackendKind::Sim, GpuBackendKind::Host] {
            let backend = kind.create(&spec).unwrap();
            assert_eq!(backend.kind(), kind);
            assert_eq!(
                backend.spec().shared_mem_per_block,
                spec.shared_mem_per_block
            );
        }
    }

    #[test]
    fn effective_spec_is_the_configured_spec_for_in_tree_backends() {
        let spec = DeviceSpec::tiny(1 << 22);
        for kind in [GpuBackendKind::Sim, GpuBackendKind::Host] {
            let eff = kind.effective_spec(&spec);
            assert_eq!(eff.shared_mem_per_block, spec.shared_mem_per_block);
            assert_eq!(eff.global_mem_bytes, spec.global_mem_bytes);
        }
    }
}
