//! [`HostBackend`] — executes the same kernel code on the host with no
//! cycle accounting.
//!
//! This is the differential oracle for the simulator: kernels observe the
//! identical geometry (block/warp shape, shared-memory budget, global
//! memory capacity) and identical data as under [`super::SimBackend`], so
//! the per-key join results of a host run must equal a sim run
//! tuple-for-tuple. What it does *not* do is model time — every `charge_*`
//! / `account_*` hook is a no-op, launches report zero cycles, and phase
//! durations come out as zero.
//!
//! Launch validation, the `gpu.launch` / `gpu.memory.alloc` /
//! `gpu.shared_alloc` failpoints, shared-budget enforcement, and the
//! panic-to-typed-error boundary all behave exactly as on the simulator so
//! chaos and fuzz coverage carries over unchanged.

use std::panic::{catch_unwind, AssertUnwindSafe};

use skewjoin_common::{faults, JoinError};
use skewjoin_gpu_sim::{
    validate_launch_config, BufferId, DeviceSpec, GlobalMemory, LaunchStats, Metrics,
};

use super::{BlockOps, DeviceKernel, GpuBackend, GpuBackendKind, SharedRegion};

/// Host-execution backend: real data movement, zero modeled cycles.
pub struct HostBackend {
    spec: DeviceSpec,
    memory: GlobalMemory,
    launch_log: Vec<LaunchStats>,
}

impl HostBackend {
    /// Creates a host backend enforcing `spec`'s limits (global memory,
    /// shared budget, launch geometry) without modeling its timing.
    pub fn new(spec: DeviceSpec) -> Self {
        let memory = GlobalMemory::new(spec.global_mem_bytes);
        Self {
            spec,
            memory,
            launch_log: Vec::new(),
        }
    }
}

/// Per-block context for host execution: data movement only.
struct HostBlockCtx<'a> {
    block_idx: usize,
    block_dim: usize,
    sm_slot: usize,
    spec: &'a DeviceSpec,
    mem: &'a mut GlobalMemory,
    shared: Vec<(Vec<u64>, usize)>,
    shared_used: usize,
}

impl BlockOps for HostBlockCtx<'_> {
    fn block_idx(&self) -> usize {
        self.block_idx
    }

    fn block_dim(&self) -> usize {
        self.block_dim
    }

    fn sm_slot(&self) -> usize {
        self.sm_slot
    }

    fn warp_size(&self) -> usize {
        self.spec.warp_size
    }

    fn shared_mem_per_block(&self) -> usize {
        self.spec.shared_mem_per_block
    }

    fn shared_used(&self) -> usize {
        self.shared_used
    }

    fn try_shared_alloc(&mut self, len: usize, elem_bytes: usize) -> Option<SharedRegion> {
        assert!(elem_bytes == 4 || elem_bytes == 8);
        let bytes = len * elem_bytes;
        // Same budget and same failpoint as the simulator, so kernels take
        // identical fallback paths (e.g. GSH's clamped sample table).
        if self.shared_used + bytes > self.spec.shared_mem_per_block
            || faults::fire("gpu.shared_alloc")
        {
            return None;
        }
        self.shared_used += bytes;
        self.shared.push((vec![0u64; len], elem_bytes));
        Some(SharedRegion(self.shared.len() - 1))
    }

    fn shared_alloc(&mut self, len: usize, elem_bytes: usize) -> SharedRegion {
        let bytes = len * elem_bytes;
        self.try_shared_alloc(len, elem_bytes).unwrap_or_else(|| {
            panic!(
                "shared memory exhausted: requested {bytes} B, used {} of {} B",
                self.shared_used, self.spec.shared_mem_per_block
            )
        })
    }

    fn shared_atomic_add(
        &mut self,
        region: SharedRegion,
        ops: &[(usize, u64)],
        out: &mut Vec<u64>,
    ) {
        out.clear();
        for &(i, d) in ops {
            let slot = &mut self.shared[region.0].0[i];
            out.push(*slot);
            *slot += d;
        }
    }

    fn warp_gather(&mut self, buf: BufferId, indices: &[usize], out: &mut Vec<u64>) {
        out.clear();
        out.extend(indices.iter().map(|&i| self.mem.host_read(buf, i)));
    }

    fn warp_scatter(&mut self, buf: BufferId, writes: &[(usize, u64)]) {
        for &(i, v) in writes {
            self.mem.host_write(buf, i, v);
        }
    }

    fn read_run(&self, buf: BufferId, idx: usize) -> u64 {
        self.mem.host_read(buf, idx)
    }

    fn account_contiguous_read(&mut self, _buf: BufferId, _len: usize) {}

    fn account_stream_bytes(&mut self, _bytes: u64) {}

    fn syncthreads(&mut self) {}

    fn alu(&mut self, _n: u64) {}

    fn charge_shared_accesses(&mut self, _count: u64) {}

    fn charge_shared_atomics(&mut self, _count: u64, _serialization: u64) {}

    fn charge_global_atomics(&mut self, _count: u64, _serialization: u64) {}

    fn charge_atomic_serial_lanes(&mut self, _count: u64) {}

    fn charge_syncs(&mut self, _count: u64) {}

    fn charge_ballots(&mut self, _count: u64) {}

    fn charge_divergence_waste(&mut self, _cycles: u64) {}
}

impl GpuBackend for HostBackend {
    fn kind(&self) -> GpuBackendKind {
        GpuBackendKind::Host
    }

    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn alloc(&mut self, len: usize, elem_bytes: usize, label: &str) -> Result<BufferId, JoinError> {
        self.memory.alloc(len, elem_bytes).ok_or_else(|| {
            JoinError::GpuResourceExhausted(format!("{label} exceeds global memory"))
        })
    }

    fn free(&mut self, buf: BufferId) {
        self.memory.free(buf);
    }

    fn buffer_len(&self, buf: BufferId) -> usize {
        self.memory.len(buf)
    }

    fn host_upload(&mut self, buf: BufferId, offset: usize, values: &[u64]) {
        self.memory.host_upload(buf, offset, values);
    }

    fn host_read(&self, buf: BufferId, idx: usize) -> u64 {
        self.memory.host_read(buf, idx)
    }

    fn host_write(&mut self, buf: BufferId, idx: usize, value: u64) {
        self.memory.host_write(buf, idx, value);
    }

    fn host_slice(&self, buf: BufferId) -> &[u64] {
        self.memory.host_slice(buf)
    }

    fn launch(
        &mut self,
        name: &str,
        grid_blocks: usize,
        block_dim: usize,
        kernel: &mut dyn DeviceKernel,
    ) -> Result<LaunchStats, JoinError> {
        validate_launch_config(&self.spec, name, grid_blocks, block_dim)?;
        if faults::fire("gpu.launch") {
            return Err(JoinError::GpuResourceExhausted(format!(
                "kernel {name}: injected launch failure"
            )));
        }

        // Blocks run sequentially in block order — part of the GpuBackend
        // contract (kernels may carry host-precomputed cross-block cursors),
        // and the same order the simulator uses.
        for block_idx in 0..grid_blocks {
            let mut ctx = HostBlockCtx {
                block_idx,
                block_dim,
                sm_slot: block_idx % self.spec.num_sms,
                spec: &self.spec,
                mem: &mut self.memory,
                shared: Vec::new(),
                shared_used: 0,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| kernel.block(&mut ctx)));
            if let Err(payload) = outcome {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                return Err(if msg.contains("shared memory exhausted") {
                    JoinError::GpuResourceExhausted(format!(
                        "kernel {name}, block {block_idx}: {msg}"
                    ))
                } else {
                    JoinError::WorkerPanicked {
                        worker: block_idx,
                        phase: name.to_string(),
                    }
                });
            }
        }

        let stats = LaunchStats {
            name: name.to_string(),
            grid_blocks,
            block_dim,
            device_cycles: 0,
            max_block_cycles: 0,
            metrics: Metrics::default(),
        };
        self.launch_log.push(stats.clone());
        Ok(stats)
    }

    fn total_cycles(&self) -> u64 {
        0
    }

    fn launch_log(&self) -> &[LaunchStats] {
        &self.launch_log
    }

    fn render_timeline(&self) -> String {
        let mut out = String::from("host execution (no modeled time)\n");
        out.push_str(&format!("{:<26} {:>5} {:>8}\n", "kernel", "runs", "blocks"));
        let mut order: Vec<&str> = Vec::new();
        let mut rows: std::collections::HashMap<&str, (usize, usize)> =
            std::collections::HashMap::new();
        for launch in &self.launch_log {
            let row = rows.entry(&launch.name).or_insert_with(|| {
                order.push(&launch.name);
                (0, 0)
            });
            row.0 += 1;
            row.1 += launch.grid_blocks;
        }
        for name in order {
            let (runs, blocks) = rows[name];
            out.push_str(&format!("{name:<26} {runs:>5} {blocks:>8}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FillKernel {
        buf: BufferId,
    }

    impl DeviceKernel for FillKernel {
        fn block(&mut self, ctx: &mut dyn BlockOps) {
            let base = ctx.block_idx() * 32;
            let writes: Vec<(usize, u64)> =
                (0..32).map(|i| (base + i, (base + i) as u64)).collect();
            ctx.warp_scatter(self.buf, &writes);
            ctx.syncthreads();
            ctx.alu(10);
        }
    }

    #[test]
    fn executes_blocks_and_reports_zero_cycles() {
        let mut backend = HostBackend::new(DeviceSpec::tiny(1 << 20));
        let buf = backend.alloc(128, 8, "fill buffer").unwrap();
        let stats = backend
            .launch("fill", 4, 32, &mut FillKernel { buf })
            .unwrap();
        assert_eq!(stats.device_cycles, 0);
        assert_eq!(backend.total_cycles(), 0);
        for i in 0..128 {
            assert_eq!(backend.host_read(buf, i), i as u64);
        }
        assert_eq!(backend.launch_log().len(), 1);
        assert!(backend.render_timeline().contains("fill"));
    }

    #[test]
    fn rejects_invalid_launch_configs_like_the_simulator() {
        let mut backend = HostBackend::new(DeviceSpec::tiny(1 << 20));
        struct Nop;
        impl DeviceKernel for Nop {
            fn block(&mut self, _ctx: &mut dyn BlockOps) {}
        }
        for (grid, dim, needle) in [
            (1usize, 33usize, "multiple of the warp size"),
            (1, 0, "must be positive"),
            (1, 1 << 20, "exceeds the device limit"),
            (usize::MAX, 32, "overflows"),
        ] {
            match backend.launch("nop", grid, dim, &mut Nop) {
                Err(JoinError::InvalidConfig(msg)) => {
                    assert!(msg.contains(needle), "{msg:?} missing {needle:?}")
                }
                other => panic!("expected InvalidConfig for ({grid}, {dim}), got {other:?}"),
            }
        }
        assert!(backend.launch_log().is_empty());
    }

    #[test]
    fn shared_memory_exhaustion_is_a_typed_error() {
        let mut backend = HostBackend::new(DeviceSpec::tiny(1 << 20));
        struct Greedy;
        impl DeviceKernel for Greedy {
            fn block(&mut self, ctx: &mut dyn BlockOps) {
                ctx.shared_alloc(1 << 28, 8);
            }
        }
        match backend.launch("greedy", 1, 32, &mut Greedy) {
            Err(JoinError::GpuResourceExhausted(msg)) => {
                assert!(msg.contains("shared memory exhausted"), "{msg}")
            }
            other => panic!("expected GpuResourceExhausted, got {other:?}"),
        }
        // The backend stays usable afterwards.
        struct Nop;
        impl DeviceKernel for Nop {
            fn block(&mut self, _ctx: &mut dyn BlockOps) {}
        }
        assert!(backend.launch("nop", 1, 32, &mut Nop).is_ok());
    }

    #[test]
    fn kernel_panic_is_reported_with_block_index() {
        let mut backend = HostBackend::new(DeviceSpec::tiny(1 << 20));
        struct Faulty;
        impl DeviceKernel for Faulty {
            fn block(&mut self, ctx: &mut dyn BlockOps) {
                assert!(ctx.block_idx() != 2, "kernel bug in block 2");
            }
        }
        match backend.launch("faulty", 4, 32, &mut Faulty) {
            Err(JoinError::WorkerPanicked { worker, phase }) => {
                assert_eq!(worker, 2);
                assert_eq!(phase, "faulty");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn out_of_memory_is_a_typed_error() {
        let mut backend = HostBackend::new(DeviceSpec::tiny(64));
        match backend.alloc(1 << 20, 8, "huge buffer") {
            Err(JoinError::GpuResourceExhausted(msg)) => {
                assert!(msg.contains("huge buffer"), "{msg}")
            }
            other => panic!("expected GpuResourceExhausted, got {other:?}"),
        }
    }
}
