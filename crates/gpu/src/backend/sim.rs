//! [`SimBackend`] — the gpu-sim cost model behind the [`GpuBackend`] trait.
//!
//! Every [`BlockOps`] method forwards 1:1 to the corresponding
//! [`BlockCtx`] operation, so the cycles charged through the trait are
//! bit-identical to kernels written directly against the simulator — the
//! cost-model regression tests and the committed perf trajectory depend on
//! that.

use skewjoin_common::JoinError;
use skewjoin_gpu_sim::{BlockCtx, BufferId, Device, DeviceSpec, Kernel, LaunchStats, SharedId};

use super::{BlockOps, DeviceKernel, GpuBackend, GpuBackendKind, SharedRegion};

/// The default backend: kernels run on [`skewjoin_gpu_sim::Device`],
/// producing real results and modeled cycles.
pub struct SimBackend {
    device: Device,
}

impl SimBackend {
    /// Creates a simulator backend over `spec`.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            device: Device::new(spec),
        }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

/// Adapts a backend-portable [`DeviceKernel`] to the simulator's [`Kernel`]
/// trait: the [`BlockCtx`] itself implements [`BlockOps`], so the kernel
/// body runs unchanged with full cost accounting.
struct SimKernelAdapter<'a>(&'a mut dyn DeviceKernel);

impl Kernel for SimKernelAdapter<'_> {
    fn block(&mut self, ctx: &mut BlockCtx<'_>) {
        self.0.block(ctx);
    }
}

impl BlockOps for BlockCtx<'_> {
    fn block_idx(&self) -> usize {
        self.block_idx
    }

    fn block_dim(&self) -> usize {
        self.block_dim
    }

    fn sm_slot(&self) -> usize {
        self.sm_slot
    }

    fn warp_size(&self) -> usize {
        BlockCtx::warp_size(self)
    }

    fn shared_mem_per_block(&self) -> usize {
        self.spec().shared_mem_per_block
    }

    fn shared_used(&self) -> usize {
        BlockCtx::shared_used(self)
    }

    fn try_shared_alloc(&mut self, len: usize, elem_bytes: usize) -> Option<SharedRegion> {
        BlockCtx::try_shared_alloc(self, len, elem_bytes).map(|id| SharedRegion(id.raw()))
    }

    fn shared_alloc(&mut self, len: usize, elem_bytes: usize) -> SharedRegion {
        SharedRegion(BlockCtx::shared_alloc(self, len, elem_bytes).raw())
    }

    fn shared_atomic_add(
        &mut self,
        region: SharedRegion,
        ops: &[(usize, u64)],
        out: &mut Vec<u64>,
    ) {
        BlockCtx::shared_atomic_add(self, SharedId::from_raw(region.0), ops, out);
    }

    fn warp_gather(&mut self, buf: BufferId, indices: &[usize], out: &mut Vec<u64>) {
        BlockCtx::warp_gather(self, buf, indices, out);
    }

    fn warp_scatter(&mut self, buf: BufferId, writes: &[(usize, u64)]) {
        BlockCtx::warp_scatter(self, buf, writes);
    }

    fn read_run(&self, buf: BufferId, idx: usize) -> u64 {
        BlockCtx::read_run(self, buf, idx)
    }

    fn account_contiguous_read(&mut self, buf: BufferId, len: usize) {
        BlockCtx::account_contiguous_read(self, buf, len);
    }

    fn account_stream_bytes(&mut self, bytes: u64) {
        BlockCtx::account_stream_bytes(self, bytes);
    }

    fn syncthreads(&mut self) {
        BlockCtx::syncthreads(self);
    }

    fn alu(&mut self, n: u64) {
        BlockCtx::alu(self, n);
    }

    fn charge_shared_accesses(&mut self, count: u64) {
        BlockCtx::charge_shared_accesses(self, count);
    }

    fn charge_shared_atomics(&mut self, count: u64, serialization: u64) {
        BlockCtx::charge_shared_atomics(self, count, serialization);
    }

    fn charge_global_atomics(&mut self, count: u64, serialization: u64) {
        BlockCtx::charge_global_atomics(self, count, serialization);
    }

    fn charge_atomic_serial_lanes(&mut self, count: u64) {
        BlockCtx::charge_atomic_serial_lanes(self, count);
    }

    fn charge_syncs(&mut self, count: u64) {
        BlockCtx::charge_syncs(self, count);
    }

    fn charge_ballots(&mut self, count: u64) {
        BlockCtx::charge_ballots(self, count);
    }

    fn charge_divergence_waste(&mut self, cycles: u64) {
        BlockCtx::charge_divergence_waste(self, cycles);
    }
}

impl GpuBackend for SimBackend {
    fn kind(&self) -> GpuBackendKind {
        GpuBackendKind::Sim
    }

    fn spec(&self) -> &DeviceSpec {
        self.device.spec()
    }

    fn alloc(&mut self, len: usize, elem_bytes: usize, label: &str) -> Result<BufferId, JoinError> {
        self.device.memory.alloc(len, elem_bytes).ok_or_else(|| {
            JoinError::GpuResourceExhausted(format!("{label} exceeds global memory"))
        })
    }

    fn free(&mut self, buf: BufferId) {
        self.device.memory.free(buf);
    }

    fn buffer_len(&self, buf: BufferId) -> usize {
        self.device.memory.len(buf)
    }

    fn host_upload(&mut self, buf: BufferId, offset: usize, values: &[u64]) {
        self.device.memory.host_upload(buf, offset, values);
    }

    fn host_read(&self, buf: BufferId, idx: usize) -> u64 {
        self.device.memory.host_read(buf, idx)
    }

    fn host_write(&mut self, buf: BufferId, idx: usize, value: u64) {
        self.device.memory.host_write(buf, idx, value);
    }

    fn host_slice(&self, buf: BufferId) -> &[u64] {
        self.device.memory.host_slice(buf)
    }

    fn launch(
        &mut self,
        name: &str,
        grid_blocks: usize,
        block_dim: usize,
        kernel: &mut dyn DeviceKernel,
    ) -> Result<LaunchStats, JoinError> {
        self.device
            .launch(name, grid_blocks, block_dim, &mut SimKernelAdapter(kernel))
    }

    fn total_cycles(&self) -> u64 {
        self.device.total_cycles()
    }

    fn launch_log(&self) -> &[LaunchStats] {
        self.device.launch_log()
    }

    fn render_timeline(&self) -> String {
        self.device.render_timeline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles a buffer through the trait surface.
    struct DoubleKernel {
        buf: BufferId,
        n: usize,
    }

    impl DeviceKernel for DoubleKernel {
        fn block(&mut self, ctx: &mut dyn BlockOps) {
            let start = ctx.block_idx() * 256;
            let end = (start + 256).min(self.n);
            let mut vals = Vec::new();
            let mut idx = Vec::new();
            let mut i = start;
            while i < end {
                let hi = (i + ctx.warp_size()).min(end);
                idx.clear();
                idx.extend(i..hi);
                ctx.warp_gather(self.buf, &idx, &mut vals);
                let writes: Vec<(usize, u64)> = idx
                    .iter()
                    .zip(vals.iter())
                    .map(|(&j, &v)| (j, v * 2))
                    .collect();
                ctx.alu(1);
                ctx.warp_scatter(self.buf, &writes);
                i = hi;
            }
        }
    }

    #[test]
    fn trait_launch_matches_direct_device_use() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(1 << 20));
        let buf = backend.alloc(1000, 8, "test buffer").unwrap();
        let init: Vec<u64> = (0..1000).collect();
        backend.host_upload(buf, 0, &init);
        let stats = backend
            .launch("double", 4, 256, &mut DoubleKernel { buf, n: 1000 })
            .unwrap();
        assert!(stats.device_cycles > 0);
        assert_eq!(backend.total_cycles(), stats.device_cycles);
        for i in 0..1000 {
            assert_eq!(backend.host_read(buf, i), (i as u64) * 2);
        }
    }

    #[test]
    fn alloc_failure_names_the_label() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(64));
        match backend.alloc(1 << 20, 8, "table R (1048576 tuples)") {
            Err(JoinError::GpuResourceExhausted(msg)) => {
                assert!(msg.contains("table R"), "{msg}");
            }
            other => panic!("expected GpuResourceExhausted, got {other:?}"),
        }
    }
}
