//! **Gbase** — the baseline GPU partitioned hash join (Sioulas et al., the
//! paper's \[24\]), end to end on the simulator.
//!
//! Partition phase: two radix passes in the linked-bucket style (single
//! scan per pass, atomic bucket cursors, an allocation atomic per bucket
//! overflow). Join phase: one thread block per (R sub-list, S partition)
//! pair — oversized R partitions are decomposed into sub-lists of at most
//! the shared-memory table capacity, each of which probes the *full* S
//! partition, with the write-bitmap output protocol synchronizing the block
//! on every chain step. These are precisely the skew pathologies §III
//! quantifies.

use std::time::Instant;

use skewjoin_common::trace::counter;
use skewjoin_common::{JoinError, JoinStats, Relation, SinkFactory};

use crate::config::GpuJoinConfig;
use crate::nmjoin::{build_nm_tasks, NmJoinKernel};
use crate::pack::upload_relation;
use crate::partition::{gpu_partition, PartitionStyle};
use crate::{aggregate_sinks, record_launches, GpuJoinOutcome};

/// Runs the Gbase join on a fresh backend selected by `cfg.backend`
/// (the simulator by default). `factory` builds the per-SM-slot output
/// sinks; any `Fn(usize) -> S + Sync` closure works through the blanket
/// [`SinkFactory`] impl. Phase durations in the returned stats are
/// *simulated* device time (zero on the host backend);
/// `simulated_cycles` carries the raw total.
pub fn gbase_join<F: SinkFactory>(
    r: &Relation,
    s: &Relation,
    cfg: &GpuJoinConfig,
    factory: F,
) -> Result<GpuJoinOutcome<F::Sink>, JoinError> {
    cfg.validate()?;
    let mut backend = cfg.backend.create(&cfg.spec)?;
    let backend = backend.as_mut();
    let mut stats = JoinStats::new("Gbase");

    let r_buf = upload_relation(backend, r, "table R")?;
    let s_buf = upload_relation(backend, s, "table S")?;

    let radix = cfg.derived_radix(r.len().max(s.len()).max(1));
    let capacity = cfg.derived_table_capacity();
    let style = PartitionStyle::LinkedBuckets {
        bucket_capacity: cfg.bucket_capacity,
    };

    // ---- Partition phase (simulated time). ----
    let c0 = backend.total_cycles();
    let l0 = backend.launch_log().len();
    let parted_r = gpu_partition(backend, r_buf, &radix, style, cfg.block_dim)?;
    let parted_s = gpu_partition(backend, s_buf, &radix, style, cfg.block_dim)?;
    stats.phases.record(
        "partition",
        backend
            .spec()
            .cycles_to_duration(backend.total_cycles() - c0),
    );
    stats.partitions = parted_r.partitions();
    record_launches(&mut stats.trace, "partition", &backend.launch_log()[l0..]);
    stats
        .trace
        .set("partition", counter::TUPLES_IN, (r.len() + s.len()) as u64);
    let parted_out: usize = (0..parted_r.partitions())
        .map(|p| parted_r.size(p) + parted_s.size(p))
        .sum();
    stats
        .trace
        .set("partition", counter::TUPLES_OUT, parted_out as u64);
    stats.trace.set(
        "partition",
        counter::PARTITIONS,
        parted_r.partitions() as u64,
    );

    // ---- Join phase: sub-list decomposition + write-bitmap probe. ----
    let c1 = backend.total_cycles();
    let l1 = backend.launch_log().len();
    let host_t = Instant::now();
    let tasks = build_nm_tasks(
        parted_r.buf,
        &parted_r.starts,
        parted_s.buf,
        &parted_s.starts,
        capacity,
    );
    let mut sinks: Vec<F::Sink> = (0..backend.spec().num_sms)
        .map(|slot| factory.make_sink(slot))
        .collect();
    if !tasks.is_empty() {
        let mut kernel = NmJoinKernel::new(&tasks, &mut sinks);
        backend.launch("gbase_join", tasks.len(), cfg.block_dim, &mut kernel)?;
    }
    stats.phases.record(
        "join",
        backend
            .spec()
            .cycles_to_duration(backend.total_cycles() - c1),
    );
    // Host-side simulation time is not part of the model; drop it.
    let _ = host_t.elapsed();
    record_launches(&mut stats.trace, "join", &backend.launch_log()[l1..]);
    stats
        .trace
        .set("join", counter::TASKS_RUN, tasks.len() as u64);
    let build: usize = tasks.iter().map(|t| t.r_range.len()).sum();
    let probe: usize = tasks.iter().map(|t| t.s_range.len()).sum();
    stats.trace.set("join", counter::BUILD_TUPLES, build as u64);
    stats.trace.set("join", counter::PROBE_TUPLES, probe as u64);

    stats.simulated_cycles = backend.total_cycles();
    let timeline = backend.render_timeline();
    aggregate_sinks(&mut stats, &sinks);
    stats
        .trace
        .set("join", counter::RESULTS, stats.result_count);
    Ok(GpuJoinOutcome {
        stats,
        sinks,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skewjoin_common::CountingSink;
    use skewjoin_cpu::reference_join;
    use skewjoin_datagen::{PaperWorkload, WorkloadSpec};
    use skewjoin_gpu_sim::DeviceSpec;

    fn small_cfg() -> GpuJoinConfig {
        GpuJoinConfig {
            spec: DeviceSpec::tiny(1 << 26),
            block_dim: 64,
            ..GpuJoinConfig::default()
        }
    }

    fn assert_matches_reference(r: &Relation, s: &Relation, cfg: &GpuJoinConfig) -> JoinStats {
        let outcome = gbase_join(r, s, cfg, |_| CountingSink::new()).unwrap();
        let mut reference = CountingSink::new();
        let ref_stats = reference_join(r, s, &mut reference);
        assert_eq!(outcome.stats.result_count, ref_stats.result_count);
        assert_eq!(outcome.stats.checksum, ref_stats.checksum);
        outcome.stats
    }

    #[test]
    fn matches_reference_across_skews() {
        for zipf in [0.0, 0.75, 1.0] {
            let w = PaperWorkload::generate(WorkloadSpec::paper(4096, zipf, 31));
            assert_matches_reference(&w.r, &w.s, &small_cfg());
        }
    }

    #[test]
    fn empty_inputs() {
        let cfg = small_cfg();
        let e = Relation::new();
        let r = Relation::from_keys(&[1, 2]);
        let out = gbase_join(&e, &r, &cfg, |_| CountingSink::new()).unwrap();
        assert_eq!(out.stats.result_count, 0);
        let out = gbase_join(&r, &e, &cfg, |_| CountingSink::new()).unwrap();
        assert_eq!(out.stats.result_count, 0);
    }

    #[test]
    fn join_time_grows_with_skew() {
        let lo = PaperWorkload::generate(WorkloadSpec::paper(1 << 13, 0.2, 7));
        let hi = PaperWorkload::generate(WorkloadSpec::paper(1 << 13, 1.0, 7));
        let cfg = small_cfg();
        let a = assert_matches_reference(&lo.r, &lo.s, &cfg);
        let b = assert_matches_reference(&hi.r, &hi.s, &cfg);
        let ja = a.phases.get("join");
        let jb = b.phases.get("join");
        assert!(jb > ja * 3, "high-skew join {jb:?} not ≫ low-skew {ja:?}");
        // Partition time must stay comparatively stable.
        let pa = a.phases.get("partition");
        let pb = b.phases.get("partition");
        assert!(pb < pa * 3, "partition {pb:?} vs {pa:?}");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let cfg = GpuJoinConfig {
            spec: DeviceSpec::tiny(64),
            block_dim: 64,
            ..GpuJoinConfig::default()
        };
        let r = Relation::from_keys(&(0..1000).collect::<Vec<_>>());
        let err = gbase_join(&r, &r, &cfg, |_| CountingSink::new()).unwrap_err();
        assert!(matches!(err, JoinError::GpuResourceExhausted(_)));
    }
}
