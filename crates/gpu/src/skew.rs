//! GSH's post-partition skew machinery (§IV-B steps 2–3 and 5):
//! sampling-based detection in large partitions, splitting large partitions
//! into per-skewed-key arrays plus a normal residue, and the dedicated
//! skew-output kernel (one thread block per skewed R tuple).

use skewjoin_common::hash::mix32;
use skewjoin_common::{JoinError, Key, OutputSink};
use skewjoin_gpu_sim::BufferId;

use crate::backend::{BlockOps, DeviceKernel, GpuBackend};
use crate::config::GpuSkewConfig;
use crate::pack::{key_of, payload_of};
use crate::partition::DevicePartitioned;

/// Skewed keys detected in one large partition.
#[derive(Debug, Clone)]
pub struct DetectedSkew {
    /// The partition id.
    pub pid: usize,
    /// Up to `top_k` keys, most frequent in the sample first.
    pub keys: Vec<Key>,
    /// Observed frequency of each key (sample counts for `Sampled`
    /// detection, true counts for `Exact`); parallel to `keys`.
    pub freqs: Vec<u64>,
}

/// Samples each large partition (~1 %), counts key frequencies in a
/// linear-probing shared-memory table, and returns the top-k keys per
/// partition (§IV-B step 2). One block per large partition.
pub fn detect_skew(
    backend: &mut dyn GpuBackend,
    parted_r: &DevicePartitioned,
    large_pids: &[usize],
    cfg: &GpuSkewConfig,
    block_dim: usize,
) -> Result<Vec<DetectedSkew>, JoinError> {
    if large_pids.is_empty() {
        return Ok(Vec::new());
    }
    let results = match cfg.detection {
        crate::config::GpuDetectionMode::Sampled => {
            let mut kernel = SampleKernel {
                parted: parted_r,
                pids: large_pids,
                cfg,
                results: vec![Vec::new(); large_pids.len()],
                scratch_idx: Vec::new(),
                scratch_vals: Vec::new(),
            };
            backend.launch("gsh_detect", large_pids.len(), block_dim, &mut kernel)?;
            kernel.results
        }
        crate::config::GpuDetectionMode::Exact => {
            let mut kernel = ExactCountKernel {
                parted: parted_r,
                pids: large_pids,
                top_k: cfg.top_k,
                results: vec![Vec::new(); large_pids.len()],
            };
            backend.launch("gsh_detect_exact", large_pids.len(), block_dim, &mut kernel)?;
            kernel.results
        }
    };
    Ok(large_pids
        .iter()
        .zip(results)
        .map(|(&pid, entries)| {
            let (keys, freqs) = entries.into_iter().unzip();
            DetectedSkew { pid, keys, freqs }
        })
        .collect())
}

/// Exact detection: hash every tuple of the partition through a
/// global-memory count table (one global atomic per tuple — the cost the
/// paper's sampling avoids), then take the true top-k.
struct ExactCountKernel<'a> {
    parted: &'a DevicePartitioned,
    pids: &'a [usize],
    top_k: usize,
    results: Vec<Vec<(Key, u64)>>,
}

impl DeviceKernel for ExactCountKernel<'_> {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let pid = self.pids[ctx.block_idx()];
        let range = self.parted.range(pid);
        let len = range.len();
        if len == 0 {
            return;
        }
        // Stream the partition (coalesced) and charge one global atomic per
        // warp with moderate serialization (hot keys collide on a counter).
        ctx.account_contiguous_read(self.parted.buf, len);
        let warp = ctx.warp_size() as u64;
        let warps = (len as u64).div_ceil(warp);
        ctx.alu(warps * 2);
        ctx.charge_global_atomics(warps, 4);

        // Functional exact counts.
        let mut counts: std::collections::HashMap<Key, u64> = std::collections::HashMap::new();
        for i in range {
            let key = key_of(ctx.read_run(self.parted.buf, i));
            *counts.entry(key).or_default() += 1;
        }
        // Top-k scan of the count table (read back, coalesced).
        ctx.account_contiguous_read(self.parted.buf, counts.len().min(len));
        let mut entries: Vec<(u64, Key)> = counts.into_iter().map(|(k, c)| (c, k)).collect();
        entries.sort_unstable_by(|a, b| b.cmp(a));
        self.results[ctx.block_idx()] = entries
            .into_iter()
            .filter(|&(c, _)| c >= 2)
            .take(self.top_k)
            .map(|(c, k)| (k, c))
            .collect();
        ctx.account_stream_bytes((self.top_k * 8) as u64);
    }
}

struct SampleKernel<'a> {
    parted: &'a DevicePartitioned,
    pids: &'a [usize],
    cfg: &'a GpuSkewConfig,
    results: Vec<Vec<(Key, u64)>>,
    scratch_idx: Vec<usize>,
    scratch_vals: Vec<u64>,
}

impl DeviceKernel for SampleKernel<'_> {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let pid = self.pids[ctx.block_idx()];
        let range = self.parted.range(pid);
        let len = range.len();
        if len == 0 {
            return;
        }
        let samples = ((len as f64 * self.cfg.sample_rate).round() as usize).clamp(1, len);
        let stride = len / samples;

        // Linear-probing frequency table in shared memory (key, count).
        let cap = (samples * 2).next_power_of_two().max(8);
        let table_region = ctx.try_shared_alloc(cap, 8);
        // If the sample table would not fit (enormous partition), fall back
        // to a smaller capacity — the hardware code would clamp likewise.
        let cap = if table_region.is_some() {
            cap
        } else {
            let fit = (ctx.shared_mem_per_block() - ctx.shared_used()) / 8;
            // `next_power_of_two()/2` is 0 for fit ≤ 1, and the table below
            // needs at least a few slots for its mask arithmetic; if not
            // even a minimal table fits, leave the partition unsampled (no
            // keys detected) rather than indexing through an underflowed
            // mask.
            let c = (fit.next_power_of_two() / 2).max(8);
            if ctx.try_shared_alloc(c, 8).is_none() {
                return;
            }
            c
        };
        let mask = cap - 1;
        let mut keys = vec![0u32; cap];
        let mut counts = vec![0u32; cap];

        // Strided sampling: scattered reads (charged as such).
        let warp = ctx.warp_size();
        let mut j = 0usize;
        while j < samples {
            let hi = (j + warp).min(samples);
            self.scratch_idx.clear();
            self.scratch_idx
                .extend((j..hi).map(|k| range.start + (k * stride).min(len - 1)));
            ctx.warp_gather(self.parted.buf, &self.scratch_idx, &mut self.scratch_vals);
            ctx.alu(2);
            for &w in &self.scratch_vals {
                let key = key_of(w);
                let mut slot = (mix32(key) as usize) & mask;
                let mut probes = 1u64;
                loop {
                    if counts[slot] == 0 {
                        keys[slot] = key;
                        counts[slot] = 1;
                        break;
                    }
                    if keys[slot] == key {
                        counts[slot] += 1;
                        break;
                    }
                    slot = (slot + 1) & mask;
                    probes += 1;
                }
                ctx.charge_shared_accesses(probes);
            }
            // One insert atomic per warp (amortized view of per-lane CAS).
            ctx.charge_shared_atomics(1, 2);
            j = hi;
        }
        ctx.syncthreads();

        // Top-k scan over the table.
        ctx.charge_shared_accesses((cap as u64).div_ceil(warp as u64));
        ctx.alu((cap as u64).div_ceil(warp as u64));
        let mut entries: Vec<(u32, Key)> = keys
            .iter()
            .zip(counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&k, &c)| (c, k))
            .collect();
        entries.sort_unstable_by(|a, b| b.cmp(a));
        // Only keys sampled more than once qualify — a singleton sample
        // carries no evidence of skew.
        let top: Vec<(Key, u64)> = entries
            .into_iter()
            .filter(|&(c, _)| c >= 2)
            .take(self.cfg.top_k)
            .map(|(c, k)| (k, u64::from(c)))
            .collect();
        // Write the result row to global memory for the host.
        ctx.account_stream_bytes((self.cfg.top_k * 8) as u64);
        self.results[ctx.block_idx()] = top;
    }
}

/// One large partition divided into per-skewed-key arrays and a normal
/// residue (§IV-B step 3).
#[derive(Debug, Clone)]
pub struct SplitPartition {
    /// The source partition id.
    pub pid: usize,
    /// The skewed keys (same order as `skew_starts` segments).
    pub keys: Vec<Key>,
    /// Device buffer holding all skewed-key arrays back to back.
    pub skew_buf: BufferId,
    /// Array boundaries within `skew_buf` (length = keys + 1).
    pub skew_starts: Vec<usize>,
    /// Device buffer holding the normal residue.
    pub norm_buf: BufferId,
    /// Residue length in tuples.
    pub norm_len: usize,
}

/// Splits partition `pid` of `parted` by `keys` with a count kernel + a
/// contention-free scatter kernel (the same count-then-scatter discipline
/// as GSH's partitioning).
pub fn split_large_partition(
    backend: &mut dyn GpuBackend,
    parted: &DevicePartitioned,
    pid: usize,
    keys: &[Key],
    block_dim: usize,
    label: &str,
) -> Result<SplitPartition, JoinError> {
    let range = parted.range(pid);

    // Host mirror for cursor planning (the kernels do the costed work).
    let words: Vec<u64> = backend.host_slice(parted.buf)[range.clone()].to_vec();
    let mut key_counts = vec![0usize; keys.len()];
    let mut norm_len = 0usize;
    for &w in &words {
        match keys.iter().position(|&k| k == key_of(w)) {
            Some(i) => key_counts[i] += 1,
            None => norm_len += 1,
        }
    }
    let mut skew_starts = Vec::with_capacity(keys.len() + 1);
    let mut acc = 0usize;
    for &c in &key_counts {
        skew_starts.push(acc);
        acc += c;
    }
    skew_starts.push(acc);

    let skew_buf = backend.alloc(
        acc.max(1),
        8,
        &format!("skew arrays for partition {pid} ({acc} tuples)"),
    )?;
    let norm_buf = backend.alloc(
        norm_len.max(1),
        8,
        &format!("normal residue for partition {pid} ({norm_len} tuples)"),
    )?;

    let mut kernel = SplitKernel {
        src: parted.buf,
        range: range.clone(),
        keys,
        skew_buf,
        skew_cursors: skew_starts[..keys.len()].to_vec(),
        norm_buf,
        norm_cursor: 0,
        block_dim,
        scratch_idx: Vec::new(),
        scratch_vals: Vec::new(),
        scratch_writes: Vec::new(),
    };
    // Count pass + scatter pass: the count is charged as a first streaming
    // launch, the scatter does the real work.
    let chunks = range.len().div_ceil(block_dim * 8).max(1);
    let mut count_pass = CountOnlyKernel {
        src: parted.buf,
        range,
        keys_len: keys.len(),
        block_dim,
    };
    backend.launch(
        &format!("{label}_count"),
        chunks,
        block_dim,
        &mut count_pass,
    )?;
    backend.launch(&format!("{label}_scatter"), chunks, block_dim, &mut kernel)?;

    Ok(SplitPartition {
        pid,
        keys: keys.to_vec(),
        skew_buf,
        skew_starts,
        norm_buf,
        norm_len,
    })
}

/// Count pass of the split: streams the partition comparing each tuple with
/// the ≤ k skewed keys (registers), accumulating per-block counters.
struct CountOnlyKernel {
    src: BufferId,
    range: std::ops::Range<usize>,
    keys_len: usize,
    block_dim: usize,
}

impl DeviceKernel for CountOnlyKernel {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let chunk = self.block_dim * 8;
        let lo = self.range.start + ctx.block_idx() * chunk;
        let hi = (lo + chunk).min(self.range.end);
        if lo >= hi {
            return;
        }
        ctx.account_contiguous_read(self.src, hi - lo);
        // k comparisons per tuple, one warp instruction per key per warp.
        let warps = ((hi - lo) as u64).div_ceil(ctx.warp_size() as u64);
        ctx.alu(warps * self.keys_len.max(1) as u64);
        // Flush the (k + 1) per-block counters.
        ctx.account_stream_bytes(((self.keys_len + 1) * 4) as u64);
    }
}

/// Scatter pass of the split. Cursors are shared across blocks here (the
/// host precomputed a single cursor set); contention-free because the
/// backend contract runs blocks in block-index order — the modeled cost is
/// identical to per-block prefix-summed cursors.
struct SplitKernel<'a> {
    src: BufferId,
    range: std::ops::Range<usize>,
    keys: &'a [Key],
    skew_buf: BufferId,
    skew_cursors: Vec<usize>,
    norm_buf: BufferId,
    norm_cursor: usize,
    block_dim: usize,
    scratch_idx: Vec<usize>,
    scratch_vals: Vec<u64>,
    scratch_writes: Vec<(usize, u64)>,
}

impl DeviceKernel for SplitKernel<'_> {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let chunk = self.block_dim * 8;
        let lo = self.range.start + ctx.block_idx() * chunk;
        let hi = (lo + chunk).min(self.range.end);
        if lo >= hi {
            return;
        }
        let warp = ctx.warp_size();
        let mut i = lo;
        while i < hi {
            let end = (i + warp).min(hi);
            self.scratch_idx.clear();
            self.scratch_idx.extend(i..end);
            ctx.warp_gather(self.src, &self.scratch_idx, &mut self.scratch_vals);
            ctx.alu(self.keys.len().max(1) as u64);

            // Partition the warp's tuples between skew arrays and residue.
            self.scratch_writes.clear();
            let mut norm_writes: Vec<(usize, u64)> = Vec::new();
            for &w in &self.scratch_vals {
                match self.keys.iter().position(|&k| k == key_of(w)) {
                    Some(ki) => {
                        self.scratch_writes.push((self.skew_cursors[ki], w));
                        self.skew_cursors[ki] += 1;
                    }
                    None => {
                        norm_writes.push((self.norm_cursor, w));
                        self.norm_cursor += 1;
                    }
                }
            }
            if !self.scratch_writes.is_empty() {
                ctx.warp_scatter(self.skew_buf, &self.scratch_writes);
            }
            if !norm_writes.is_empty() {
                ctx.warp_scatter(self.norm_buf, &norm_writes);
            }
            i = end;
        }
    }
}

/// One skew-output block task: one skewed R tuple crossed with the matching
/// skewed S array (§IV-B step 5).
#[derive(Debug, Clone)]
pub struct SkewOutputTask {
    /// The skewed key.
    pub key: Key,
    /// The packed R tuple this block owns.
    pub r_word: u64,
    /// Buffer holding the skewed S array.
    pub s_buf: BufferId,
    /// The S array range.
    pub s_range: std::ops::Range<usize>,
}

/// The skew-output kernel: block `i` streams `tasks[i]`'s S array with
/// coalesced reads and writes the cross-product results — no per-tuple
/// synchronization, no hash probing, no key verification.
pub struct SkewJoinKernel<'a, S> {
    /// One task per block.
    pub tasks: &'a [SkewOutputTask],
    /// Per-SM-slot sinks.
    pub sinks: &'a mut [S],
}

impl<S: OutputSink> DeviceKernel for SkewJoinKernel<'_, S> {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let task = &self.tasks[ctx.block_idx()];
        if task.s_range.is_empty() {
            return;
        }
        // One read for the block's own R tuple.
        ctx.account_stream_bytes(8);
        let r_payload = payload_of(task.r_word);
        let sink = &mut self.sinks[ctx.sm_slot()];

        let block_dim = ctx.block_dim();
        let mut s = task.s_range.start;
        while s < task.s_range.end {
            let end = (s + block_dim).min(task.s_range.end);
            let len = end - s;
            ctx.account_contiguous_read(task.s_buf, len);
            for idx in s..end {
                let sw = ctx.read_run(task.s_buf, idx);
                sink.emit(task.key, r_payload, payload_of(sw));
            }
            ctx.alu((len as u64).div_ceil(ctx.warp_size() as u64));
            // Fully coalesced output write.
            ctx.account_stream_bytes(len as u64 * 12);
            s = end;
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::pack::{pack, upload_relation};
    use skewjoin_common::{CountingSink, Relation, Tuple};
    use skewjoin_gpu_sim::DeviceSpec;

    fn backend() -> SimBackend {
        SimBackend::new(DeviceSpec::tiny(1 << 24))
    }

    fn single_partition(backend: &mut dyn GpuBackend, rel: &Relation) -> DevicePartitioned {
        let buf = upload_relation(backend, rel, "test partition").unwrap();
        DevicePartitioned {
            buf,
            starts: vec![0, rel.len()],
        }
    }

    #[test]
    fn detects_dominant_keys() {
        let mut dev = backend();
        let mut keys = vec![100u32; 3000];
        keys.extend(vec![200u32; 2000]);
        keys.extend(0..3000u32);
        let rel = Relation::from_keys(&keys);
        let parted = single_partition(&mut dev, &rel);
        let found = detect_skew(&mut dev, &parted, &[0], &GpuSkewConfig::default(), 64).unwrap();
        assert_eq!(found.len(), 1);
        assert!(found[0].keys.contains(&100), "keys: {:?}", found[0].keys);
        assert!(found[0].keys.contains(&200));
        assert!(found[0].keys.len() <= 3);
    }

    #[test]
    fn no_large_partitions_no_work() {
        let mut dev = backend();
        let before = dev.total_cycles();
        let found = detect_skew(
            &mut dev,
            &DevicePartitioned {
                buf: BufferId::from_raw_for_tests(0),
                starts: vec![0],
            },
            &[],
            &GpuSkewConfig::default(),
            64,
        )
        .unwrap();
        assert!(found.is_empty());
        assert_eq!(dev.total_cycles(), before);
    }

    #[test]
    fn uniform_partition_detects_nothing() {
        let mut dev = backend();
        let keys: Vec<u32> = (0..5000).collect();
        let rel = Relation::from_keys(&keys);
        let parted = single_partition(&mut dev, &rel);
        let found = detect_skew(&mut dev, &parted, &[0], &GpuSkewConfig::default(), 64).unwrap();
        assert!(
            found[0].keys.is_empty(),
            "uniform data flagged {:?}",
            found[0].keys
        );
    }

    #[test]
    fn exact_detection_finds_true_top_keys() {
        let mut dev = backend();
        let mut keys = vec![100u32; 3000];
        keys.extend(vec![200u32; 2000]);
        keys.extend(0..3000u32);
        let rel = Relation::from_keys(&keys);
        let parted = single_partition(&mut dev, &rel);
        let mut cfg = GpuSkewConfig::default();
        cfg.detection = crate::config::GpuDetectionMode::Exact;
        let found = detect_skew(&mut dev, &parted, &[0], &cfg, 64).unwrap();
        assert_eq!(found[0].keys[0], 100, "exact top-1 must be the hottest key");
        assert_eq!(found[0].keys[1], 200);
    }

    #[test]
    fn exact_detection_costs_more_than_sampling() {
        let keys: Vec<u32> = (0..20_000u32).map(|i| i % 500).collect();
        let rel = Relation::from_keys(&keys);

        let mut dev_a = backend();
        let parted_a = single_partition(&mut dev_a, &rel);
        detect_skew(&mut dev_a, &parted_a, &[0], &GpuSkewConfig::default(), 64).unwrap();

        let mut dev_b = backend();
        let parted_b = single_partition(&mut dev_b, &rel);
        let mut cfg = GpuSkewConfig::default();
        cfg.detection = crate::config::GpuDetectionMode::Exact;
        detect_skew(&mut dev_b, &parted_b, &[0], &cfg, 64).unwrap();

        assert!(
            dev_b.total_cycles() > dev_a.total_cycles(),
            "exact {} ≤ sampled {}",
            dev_b.total_cycles(),
            dev_a.total_cycles()
        );
    }

    #[test]
    fn split_separates_skewed_and_normal() {
        let mut dev = backend();
        let mut keys = vec![7u32; 500];
        keys.extend(vec![9u32; 300]);
        keys.extend(1000..1200u32);
        let rel = Relation::from_keys(&keys);
        let parted = single_partition(&mut dev, &rel);
        let split = split_large_partition(&mut dev, &parted, 0, &[7, 9], 64, "split").unwrap();

        assert_eq!(split.skew_starts, vec![0, 500, 800]);
        assert_eq!(split.norm_len, 200);
        // Array 0 = key 7, array 1 = key 9.
        for i in 0..500 {
            assert_eq!(key_of(dev.host_read(split.skew_buf, i)), 7);
        }
        for i in 500..800 {
            assert_eq!(key_of(dev.host_read(split.skew_buf, i)), 9);
        }
        for i in 0..200 {
            let k = key_of(dev.host_read(split.norm_buf, i));
            assert!((1000..1200).contains(&k));
        }
    }

    #[test]
    fn skew_kernel_emits_cross_product() {
        let mut dev = backend();
        let s_rel = Relation::from_tuples((0..100).map(|i| Tuple::new(7, i)).collect());
        let s_buf = upload_relation(&mut dev, &s_rel, "skewed S").unwrap();
        // 10 R tuples → 10 blocks, each emitting 100 results.
        let tasks: Vec<SkewOutputTask> = (0..10)
            .map(|i| SkewOutputTask {
                key: 7,
                r_word: pack(Tuple::new(7, i)),
                s_buf,
                s_range: 0..100,
            })
            .collect();
        let mut sinks: Vec<CountingSink> = (0..dev.spec().num_sms)
            .map(|_| CountingSink::new())
            .collect();
        let mut kernel = SkewJoinKernel {
            tasks: &tasks,
            sinks: &mut sinks,
        };
        let stats = dev.launch("skew", tasks.len(), 64, &mut kernel).unwrap();
        let total: u64 = sinks.iter().map(|s| s.count()).sum();
        assert_eq!(total, 1000);
        // No synchronization in this phase.
        assert_eq!(stats.metrics.barriers, 0);
        assert_eq!(stats.metrics.sync_cycles, 0);
    }
}
