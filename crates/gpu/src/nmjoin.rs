//! The NM-join kernel: one thread block joins one (R sub-list, S partition)
//! pair through a chained hash table in shared memory, producing output via
//! Gbase's write-bitmap protocol (§II-B, §III).
//!
//! The same kernel serves both algorithms:
//! * **Gbase** decomposes an oversized R partition into sub-lists of at most
//!   `table_capacity` tuples; *every* sub-list re-probes the full S
//!   partition (its documented inefficiency).
//! * **GSH**'s NM-join runs it on normal partitions, which fit the table by
//!   construction after skew removal.
//!
//! Cost model per probe batch (block_dim S tuples, chain walk in lockstep
//! because the write bitmap forces a block-wide `__syncthreads` per chain
//! step): `steps = max` chain visits in the batch; each step charges the
//! active warps' shared reads + compares + ballots + a bitmap atomic, one
//! barrier, and the coalesced output write for that step's matches. Warp
//! divergence waste is recorded from the per-lane trip counts.

use skewjoin_common::hash::{bucket_bits_for, table_hash};
use skewjoin_common::OutputSink;
use skewjoin_gpu_sim::BufferId;

use crate::backend::{BlockOps, DeviceKernel};
use crate::pack::{key_of, payload_of};

/// One NM-join task: an R sub-list and the S partition it probes.
#[derive(Debug, Clone)]
pub struct NmTask {
    /// Buffer holding the R tuples.
    pub r_buf: BufferId,
    /// R sub-list range (≤ the shared-memory table capacity).
    pub r_range: std::ops::Range<usize>,
    /// Buffer holding the S tuples.
    pub s_buf: BufferId,
    /// S partition range (probed in full by this block).
    pub s_range: std::ops::Range<usize>,
}

/// Output tuple size in bytes (key + R payload + S payload).
const OUTPUT_BYTES: u64 = 12;

/// The NM-join kernel: block `i` executes `tasks[i]`.
pub struct NmJoinKernel<'a, S> {
    /// The task list (one per block).
    pub tasks: &'a [NmTask],
    /// Per-SM-slot output sinks.
    pub sinks: &'a mut [S],
    scratch_idx: Vec<usize>,
    scratch_vals: Vec<u64>,
}

impl<'a, S: OutputSink> NmJoinKernel<'a, S> {
    /// Creates the kernel over `tasks` with the given sink pool.
    pub fn new(tasks: &'a [NmTask], sinks: &'a mut [S]) -> Self {
        Self {
            tasks,
            sinks,
            scratch_idx: Vec::new(),
            scratch_vals: Vec::new(),
        }
    }
}

impl<S: OutputSink> DeviceKernel for NmJoinKernel<'_, S> {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let task = &self.tasks[ctx.block_idx()];
        let r_len = task.r_range.len();
        if r_len == 0 || task.s_range.is_empty() {
            return;
        }

        // ---- Build: chained hash table over the R sub-list in shared
        // memory. Capacity is enforced by the simulator's shared budget.
        let bits = bucket_bits_for(r_len);
        let buckets = 1usize << bits;
        let _tuples_region = ctx.shared_alloc(r_len, 8);
        let _next_region = ctx.shared_alloc(r_len, 4);
        let _bucket_region = ctx.shared_alloc(buckets, 4);

        // Functional table (host mirror of the shared regions).
        let mut heads = vec![u32::MAX; buckets];
        let mut next = vec![u32::MAX; r_len];
        let mut r_words = Vec::with_capacity(r_len);

        let warp = ctx.warp_size();
        let mut i = task.r_range.start;
        while i < task.r_range.end {
            let hi = (i + warp).min(task.r_range.end);
            self.scratch_idx.clear();
            self.scratch_idx.extend(i..hi);
            ctx.warp_gather(task.r_buf, &self.scratch_idx, &mut self.scratch_vals);
            ctx.alu(2); // hash + link setup

            // Per-warp shared traffic: store tuple + link, bump bucket head
            // atomically (serialization = same-bucket lanes in this warp).
            let mut max_dup = 1u64;
            let mut seen: Vec<(usize, u64)> = Vec::new();
            for &w in &self.scratch_vals {
                let local = r_words.len() as u32;
                let b = table_hash(key_of(w), bits);
                match seen.iter_mut().find(|(q, _)| *q == b) {
                    Some((_, c)) => {
                        *c += 1;
                        max_dup = max_dup.max(*c);
                    }
                    None => seen.push((b, 1)),
                }
                next[local as usize] = heads[b];
                heads[b] = local;
                r_words.push(w);
            }
            ctx.charge_shared_accesses(2);
            ctx.charge_shared_atomics(1, max_dup);
            i = hi;
        }
        ctx.syncthreads();

        // ---- Probe: S partition in block-sized batches, chain walk in
        // lockstep with the write-bitmap protocol.
        let block_dim = ctx.block_dim();
        let mut s = task.s_range.start;
        while s < task.s_range.end {
            let batch_end = (s + block_dim).min(task.s_range.end);
            let batch_len = batch_end - s;
            ctx.account_contiguous_read(task.s_buf, batch_len);

            let mut matched_total = 0u64;
            let mut max_steps = 0u64;
            let mut sum_steps = 0u64;
            // Per-warp longest chain (steps during which that warp is live).
            let mut warp_max = vec![0u64; (batch_len).div_ceil(warp)];
            for (li, sidx) in (s..batch_end).enumerate() {
                let sw = ctx.read_run(task.s_buf, sidx);
                let skey = key_of(sw);
                let mut cursor = heads[table_hash(skey, bits)];
                let mut steps = 0u64;
                while cursor != u32::MAX {
                    steps += 1;
                    let rw = r_words[cursor as usize];
                    if key_of(rw) == skey {
                        matched_total += 1;
                        self.sinks[ctx.sm_slot()].emit(skey, payload_of(rw), payload_of(sw));
                    }
                    cursor = next[cursor as usize];
                }
                max_steps = max_steps.max(steps);
                sum_steps += steps;
                let w = li / warp;
                warp_max[w] = warp_max[w].max(steps);
            }

            // Closed-form charges for the lockstep walk. A warp is live for
            // its own longest chain; the block barriers run for the block's
            // longest chain.
            let live_warp_steps: u64 = warp_max.iter().sum();
            // Chain-link + key shared reads per live warp-step (bank
            // conflicts: chain nodes land on arbitrary banks, degree ≈ 2).
            ctx.charge_shared_accesses(live_warp_steps * 2 * 2);
            // Compare + offset computation (popcount over the bitmap).
            ctx.alu(live_warp_steps * 3);
            ctx.charge_ballots(live_warp_steps);
            // Write-bitmap protocol: one bitmap atomic per live warp-step,
            // PLUS per-lane serialization — every active lane's atomic OR on
            // the warp's bitmap word retires one lane at a time. This is the
            // §III "costly synchronization and atomic operations" term that
            // explodes on long chains.
            ctx.charge_shared_atomics(live_warp_steps, 1);
            ctx.charge_atomic_serial_lanes(sum_steps.saturating_sub(live_warp_steps));
            // One block-wide barrier per chain step.
            ctx.charge_syncs(max_steps);
            // Idle-lane diagnostic: lanes whose chains ended early.
            let lanes = batch_len as u64;
            ctx.charge_divergence_waste((max_steps * lanes - sum_steps) * 4 / lanes.max(1));
            // Coalesced write of this batch's join output.
            ctx.account_stream_bytes(matched_total * OUTPUT_BYTES);

            s = batch_end;
        }
    }
}

/// Builds the NM task list for matching partition pairs, decomposing R
/// partitions larger than `table_capacity` into sub-lists (Gbase's skew
/// technique). Tasks are ordered largest-first so the greedy SM dispatch
/// starts stragglers early.
pub fn build_nm_tasks(
    r_buf: BufferId,
    r_starts: &[usize],
    s_buf: BufferId,
    s_starts: &[usize],
    table_capacity: usize,
) -> Vec<NmTask> {
    assert_eq!(r_starts.len(), s_starts.len(), "partition fan-out mismatch");
    let mut tasks = Vec::new();
    for pid in 0..r_starts.len() - 1 {
        let (r_lo, r_hi) = (r_starts[pid], r_starts[pid + 1]);
        let (s_lo, s_hi) = (s_starts[pid], s_starts[pid + 1]);
        if r_lo == r_hi || s_lo == s_hi {
            continue;
        }
        let mut sub = r_lo;
        while sub < r_hi {
            let sub_end = (sub + table_capacity).min(r_hi);
            tasks.push(NmTask {
                r_buf,
                r_range: sub..sub_end,
                s_buf,
                s_range: s_lo..s_hi,
            });
            sub = sub_end;
        }
    }
    tasks.sort_by_key(|t| std::cmp::Reverse(t.r_range.len() + t.s_range.len()));
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{GpuBackend, SimBackend};
    use crate::pack::upload_relation;
    use skewjoin_common::{CountingSink, Relation, Tuple};
    use skewjoin_gpu_sim::DeviceSpec;

    fn run_nm(r: &Relation, s: &Relation, capacity: usize) -> (u64, skewjoin_gpu_sim::Metrics) {
        let mut dev = SimBackend::new(DeviceSpec::tiny(1 << 24));
        let r_buf = upload_relation(&mut dev, r, "table R").unwrap();
        let s_buf = upload_relation(&mut dev, s, "table S").unwrap();
        // Single "partition" covering everything.
        let r_starts = vec![0, r.len()];
        let s_starts = vec![0, s.len()];
        let tasks = build_nm_tasks(r_buf, &r_starts, s_buf, &s_starts, capacity);
        let mut sinks: Vec<CountingSink> = (0..dev.spec().num_sms)
            .map(|_| CountingSink::new())
            .collect();
        let mut kernel = NmJoinKernel::new(&tasks, &mut sinks);
        let stats = dev.launch("nm", tasks.len(), 64, &mut kernel).unwrap();
        (sinks.iter().map(|s| s.count()).sum(), stats.metrics)
    }

    #[test]
    fn joins_correctly() {
        let r = Relation::from_keys(&[1, 2, 2, 3]);
        let s = Relation::from_keys(&[2, 3, 3, 4]);
        let (count, _) = run_nm(&r, &s, 128);
        // key 2: 2×1, key 3: 1×2.
        assert_eq!(count, 4);
    }

    #[test]
    fn sublist_decomposition_preserves_results() {
        // 300 R tuples of one key with capacity 64 → 5 sub-lists, each
        // probing all of S.
        let r = Relation::from_tuples(vec![Tuple::new(7, 1); 300]);
        let s = Relation::from_tuples(vec![Tuple::new(7, 2); 100]);
        let (count, _) = run_nm(&r, &s, 64);
        assert_eq!(count, 30_000);
    }

    #[test]
    fn task_splitting_counts() {
        let tasks = build_nm_tasks(
            BufferId::from_raw_for_tests(0),
            &[0, 300],
            BufferId::from_raw_for_tests(1),
            &[0, 100],
            64,
        );
        assert_eq!(tasks.len(), 5); // ceil(300/64)
        assert!(tasks.iter().all(|t| t.s_range == (0..100)));
    }

    #[test]
    fn long_chains_inflate_sync_cost() {
        // Same output size, different chain shapes: one hot key (chain 256)
        // vs 256 distinct keys (chains of 1).
        let hot_r = Relation::from_tuples(vec![Tuple::new(5, 0); 256]);
        let hot_s = Relation::from_tuples(vec![Tuple::new(5, 0); 256]);
        let (hot_count, hot_m) = run_nm(&hot_r, &hot_s, 512);

        let flat_keys: Vec<u32> = (0..256).collect();
        let flat_r = Relation::from_keys(&flat_keys);
        let flat_s = Relation::from_keys(&flat_keys);
        let (flat_count, flat_m) = run_nm(&flat_r, &flat_s, 512);

        assert_eq!(hot_count, 256 * 256);
        assert_eq!(flat_count, 256);
        assert!(
            hot_m.sync_cycles > 10 * flat_m.sync_cycles,
            "hot {} vs flat {}",
            hot_m.sync_cycles,
            flat_m.sync_cycles
        );
    }

    #[test]
    fn ragged_chains_record_divergence_waste() {
        // Half the probes hit a 128-long chain, half miss entirely: lanes
        // idle while the long-chain lanes keep walking.
        let mut r_keys = vec![5u32; 128];
        r_keys.extend(10_000..10_128u32);
        let r = Relation::from_keys(&r_keys);
        let mut s_keys = vec![5u32; 32];
        s_keys.extend(20_000..20_032u32); // no match, chain length 0
        let s = Relation::from_keys(&s_keys);
        let (_, m) = run_nm(&r, &s, 512);
        assert!(
            m.divergence_waste_cycles > 0,
            "expected divergence waste, metrics: {m:?}"
        );
    }

    #[test]
    fn empty_partitions_produce_no_tasks() {
        let tasks = build_nm_tasks(
            BufferId::from_raw_for_tests(0),
            &[0, 0, 5],
            BufferId::from_raw_for_tests(1),
            &[0, 3, 3],
            64,
        );
        // pid 0: empty R; pid 1: empty S.
        assert!(tasks.is_empty());
    }
}
