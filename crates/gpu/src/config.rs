//! GPU join configuration.

use skewjoin_common::hash::RadixConfig;
use skewjoin_common::JoinError;
use skewjoin_gpu_sim::DeviceSpec;

use crate::backend::GpuBackendKind;

/// How GSH finds skewed keys inside a large partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpuDetectionMode {
    /// The paper's detector: sample ~1 % of the partition into a
    /// linear-probing shared-memory table.
    #[default]
    Sampled,
    /// Extension: exact per-key counts via global-memory atomics — no
    /// misses, but the full partition is hashed and the atomics are paid at
    /// global latency. The `ablation` harness quantifies the trade-off.
    Exact,
}

/// Skew parameters for GSH (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSkewConfig {
    /// Fraction of a large partition sampled during detection (paper: 1 %).
    pub sample_rate: f64,
    /// Number of most-frequent sampled keys marked skewed per large
    /// partition (paper: k = 3).
    pub top_k: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Detection mode (sampled per the paper, or exact counting).
    pub detection: GpuDetectionMode,
}

impl Default for GpuSkewConfig {
    fn default() -> Self {
        Self {
            sample_rate: 0.01,
            top_k: 3,
            seed: 0x6B5E_0D5E,
            detection: GpuDetectionMode::Sampled,
        }
    }
}

/// Configuration shared by the GPU join algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuJoinConfig {
    /// Simulated device (defaults to the paper's A100).
    pub spec: DeviceSpec,
    /// Threads per block (256, a typical choice for these kernels).
    pub block_dim: usize,
    /// Radix scheme; `None` sizes the fan-out automatically so expected
    /// partitions fill about half the shared-memory hash-table capacity.
    pub radix: Option<RadixConfig>,
    /// Tuples whose chained hash table fits one block's shared memory;
    /// derived from the spec when `None`. Partitions larger than this are
    /// "large": Gbase chunks them into sub-lists, GSH runs skew handling.
    pub table_capacity: Option<usize>,
    /// GSH skew parameters.
    pub skew: GpuSkewConfig,
    /// Gbase's linked-bucket size in tuples (allocation granularity of its
    /// dynamic partition buffers).
    pub bucket_capacity: usize,
    /// Which [`GpuBackend`](crate::backend::GpuBackend) executes the
    /// kernels: the simulator (default), host execution, or — feature-gated
    /// — a real device.
    pub backend: GpuBackendKind,
}

impl Default for GpuJoinConfig {
    fn default() -> Self {
        Self {
            spec: DeviceSpec::a100(),
            block_dim: 256,
            radix: None,
            table_capacity: None,
            skew: GpuSkewConfig::default(),
            bucket_capacity: 512,
            backend: GpuBackendKind::default(),
        }
    }
}

impl GpuJoinConfig {
    /// The device limits the *selected* backend will actually enforce.
    /// For the sim and host backends this is `spec` verbatim; a real-device
    /// backend substitutes limits queried from the driver.
    pub fn effective_spec(&self) -> DeviceSpec {
        self.backend.effective_spec(&self.spec)
    }

    /// Tuples whose table (8 B tuple + 4 B link + 4 B bucket head each)
    /// fits the block's shared memory, rounded down to a power of two.
    pub fn derived_table_capacity(&self) -> usize {
        self.table_capacity.unwrap_or_else(|| {
            let per_tuple = 16; // 8 tuple + 4 next + 4 bucket head
            let cap = self.effective_spec().shared_mem_per_block / per_tuple;
            (cap.max(64)).next_power_of_two() / 2
        })
    }

    /// Radix configuration for an input of `tuples` rows: two passes sized
    /// so an average partition fills half the table capacity.
    pub fn derived_radix(&self, tuples: usize) -> RadixConfig {
        if let Some(cfg) = &self.radix {
            return cfg.clone();
        }
        let target = (self.derived_table_capacity() / 2).max(64);
        let parts = (tuples / target).max(1);
        let bits = parts.next_power_of_two().trailing_zeros().clamp(2, 16);
        RadixConfig::two_pass(bits)
    }

    /// Validates the configuration against the limits the *selected*
    /// backend enforces (`effective_spec`), not the configured sim defaults.
    pub fn validate(&self) -> Result<(), JoinError> {
        let spec = self.effective_spec();
        if self.block_dim == 0
            || self.block_dim % spec.warp_size != 0
            || self.block_dim > spec.max_threads_per_block
        {
            return Err(JoinError::InvalidConfig(format!(
                "block_dim {} must be a positive multiple of {} up to {}",
                self.block_dim, spec.warp_size, spec.max_threads_per_block
            )));
        }
        if !(self.skew.sample_rate > 0.0 && self.skew.sample_rate <= 1.0) {
            return Err(JoinError::InvalidConfig(
                "sample_rate must be in (0, 1]".into(),
            ));
        }
        if self.skew.top_k == 0 {
            return Err(JoinError::InvalidConfig("top_k must be ≥ 1".into()));
        }
        if self.bucket_capacity == 0 {
            return Err(JoinError::InvalidConfig(
                "bucket_capacity must be ≥ 1".into(),
            ));
        }
        if let Some(capacity) = self.table_capacity {
            // A zero capacity would make the NM sub-list decomposition spin
            // forever (each sub-list would be empty), and an oversized one
            // would panic inside the build kernel instead of failing
            // cleanly: the chained table needs 8 B tuple + 4 B link per
            // tuple plus 4 B per bucket head, all in one block's shared
            // memory.
            if capacity == 0 {
                return Err(JoinError::InvalidConfig(
                    "table_capacity must be ≥ 1".into(),
                ));
            }
            let buckets = 1usize << skewjoin_common::hash::bucket_bits_for(capacity);
            let table_bytes = capacity * 12 + buckets * 4;
            if table_bytes > spec.shared_mem_per_block {
                return Err(JoinError::InvalidConfig(format!(
                    "table_capacity {capacity} needs {table_bytes} bytes of shared memory \
                     per block, but the device offers {}",
                    spec.shared_mem_per_block
                )));
            }
        }
        if let Some(cfg) = &self.radix {
            if cfg.bits_per_pass.is_empty() || cfg.total_bits() == 0 || cfg.total_bits() > 24 {
                return Err(JoinError::InvalidConfig(
                    "radix config must have 1–24 total bits".into(),
                ));
            }
            // The count kernel keeps one 4-byte histogram slot per child
            // partition in shared memory; an oversized per-pass fan-out
            // would panic inside the kernel instead of failing cleanly.
            for &bits in &cfg.bits_per_pass {
                let hist_bytes = (1usize << bits) * 4;
                if hist_bytes > spec.shared_mem_per_block {
                    return Err(JoinError::InvalidConfig(format!(
                        "radix pass of {bits} bits needs a {hist_bytes}-byte shared-memory \
                         histogram, but the device offers {} bytes per block",
                        spec.shared_mem_per_block
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        GpuJoinConfig::default().validate().unwrap();
    }

    #[test]
    fn capacity_derivation_fits_shared_memory() {
        let cfg = GpuJoinConfig::default();
        let cap = cfg.derived_table_capacity();
        assert!(cap.is_power_of_two());
        assert!(cap * 16 <= cfg.spec.shared_mem_per_block);
    }

    #[test]
    fn radix_derivation_scales_with_input() {
        let cfg = GpuJoinConfig::default();
        let small = cfg.derived_radix(1 << 12).total_bits();
        let large = cfg.derived_radix(1 << 22).total_bits();
        assert!(large > small);
    }

    #[test]
    fn rejects_bad_block_dim() {
        let mut cfg = GpuJoinConfig::default();
        cfg.block_dim = 100; // not a warp multiple
        assert!(cfg.validate().is_err());
        cfg.block_dim = 2048; // too large
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_radix_fanout_exceeding_shared_memory() {
        use skewjoin_gpu_sim::DeviceSpec;
        let cfg = GpuJoinConfig {
            spec: DeviceSpec::tiny(1 << 20),        // 4 KB shared per block
            radix: Some(RadixConfig::two_pass(24)), // 12-bit pass = 16 KB hist
            ..GpuJoinConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_table_capacity() {
        let mut cfg = GpuJoinConfig::default();
        cfg.table_capacity = Some(0); // would spin build_nm_tasks forever
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_table_capacity_exceeding_shared_memory() {
        let mut cfg = GpuJoinConfig::default();
        // 2¹⁴ tuples × 12 B + bucket heads ≫ 48 KB: the build kernel would
        // panic mid-launch if this were accepted.
        cfg.table_capacity = Some(1 << 14);
        assert!(cfg.validate().is_err());
        // The largest power of two that does fit must stay accepted.
        cfg.table_capacity = Some(2048);
        cfg.validate().unwrap();
    }

    #[test]
    fn backend_defaults_to_sim_and_validation_tracks_the_selected_backend() {
        let cfg = GpuJoinConfig::default();
        assert_eq!(cfg.backend, GpuBackendKind::Sim);
        // The host backend deliberately enforces the same limits as the
        // simulator, so a config valid on one is valid on the other — and
        // invalid configs are rejected against the selected backend's spec.
        let mut host_cfg = GpuJoinConfig::default();
        host_cfg.backend = GpuBackendKind::Host;
        host_cfg.validate().unwrap();
        assert_eq!(
            host_cfg.effective_spec().shared_mem_per_block,
            host_cfg.spec.shared_mem_per_block
        );
        host_cfg.table_capacity = Some(1 << 14); // exceeds shared memory
        assert!(host_cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_skew_params() {
        let mut cfg = GpuJoinConfig::default();
        cfg.skew.top_k = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = GpuJoinConfig::default();
        cfg.skew.sample_rate = 2.0;
        assert!(cfg.validate().is_err());
    }
}
