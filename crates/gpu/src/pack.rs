//! Packing 8-byte tuples into the simulator's `u64` device words.
//!
//! A device tuple is `key | payload << 32` — the same layout a CUDA kernel
//! gets from an 8-byte vectorized load of a `{u32 key; u32 payload;}`
//! struct.

use skewjoin_common::{JoinError, Key, Payload, Relation, Tuple};
use skewjoin_gpu_sim::BufferId;

use crate::backend::GpuBackend;

/// Packs a tuple into a device word.
#[inline(always)]
pub fn pack(t: Tuple) -> u64 {
    (t.key as u64) | ((t.payload as u64) << 32)
}

/// Unpacks a device word into a tuple.
#[inline(always)]
pub fn unpack(word: u64) -> Tuple {
    Tuple::new(word as Key, (word >> 32) as Payload)
}

/// Key half of a packed tuple.
#[inline(always)]
pub fn key_of(word: u64) -> Key {
    word as Key
}

/// Payload half of a packed tuple.
#[inline(always)]
pub fn payload_of(word: u64) -> Payload {
    (word >> 32) as Payload
}

/// Uploads a relation into a fresh device buffer (host-side transfer; the
/// paper joins GPU-resident data, so no cost is charged). `label` names the
/// relation in the out-of-memory error (e.g. `"table R"`).
pub fn upload_relation(
    backend: &mut dyn GpuBackend,
    relation: &Relation,
    label: &str,
) -> Result<BufferId, JoinError> {
    let buf = backend.alloc(
        relation.len(),
        8,
        &format!("{label} ({} tuples)", relation.len()),
    )?;
    let words: Vec<u64> = relation.iter().map(|&t| pack(t)).collect();
    backend.host_upload(buf, 0, &words);
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use skewjoin_gpu_sim::DeviceSpec;

    #[test]
    fn pack_roundtrip() {
        for t in [
            Tuple::new(0, 0),
            Tuple::new(u32::MAX, 0),
            Tuple::new(0, u32::MAX),
            Tuple::new(0xDEAD_BEEF, 0x1234_5678),
        ] {
            assert_eq!(unpack(pack(t)), t);
            assert_eq!(key_of(pack(t)), t.key);
            assert_eq!(payload_of(pack(t)), t.payload);
        }
    }

    #[test]
    fn upload_places_all_tuples() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(1 << 16));
        let rel = Relation::from_keys(&[3, 1, 4, 1, 5]);
        let buf = upload_relation(&mut backend, &rel, "table R").unwrap();
        assert_eq!(backend.buffer_len(buf), 5);
        assert_eq!(unpack(backend.host_read(buf, 2)), Tuple::new(4, 2));
    }

    #[test]
    fn upload_fails_with_typed_error_when_out_of_memory() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(16));
        let rel = Relation::from_keys(&[1, 2, 3]);
        match upload_relation(&mut backend, &rel, "table R") {
            Err(JoinError::GpuResourceExhausted(msg)) => {
                assert!(msg.contains("table R (3 tuples)"), "{msg}");
            }
            other => panic!("expected GpuResourceExhausted, got {other:?}"),
        }
    }
}
