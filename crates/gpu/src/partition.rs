//! GPU radix partitioning kernels (two passes, shared-memory-sized
//! partitions).
//!
//! Two cost styles are implemented over the same data movement:
//!
//! * [`PartitionStyle::CountScatter`] — GSH's "simple count then partition"
//!   (§IV-B step 1): a count kernel with shared-memory histograms, a scan,
//!   and a contention-free scatter kernel. Two scans per pass, almost no
//!   atomics, fully coalesced reads.
//! * [`PartitionStyle::LinkedBuckets`] — Gbase's dynamic bucket scheme:
//!   one scan per pass, but every warp pays global atomic cursor updates
//!   and an allocation atomic whenever a bucket fills. Partitions are
//!   stored contiguously (see the crate-level simplification note); each
//!   `bucket_capacity` chunk stands for one linked bucket.
//!
//! Both produce a [`DevicePartitioned`]: tuples grouped by final partition
//! in *pass-major* order (pass-0 digit most significant), with a
//! host-visible directory — partition offsets are device metadata a real
//! implementation would also keep on the host for kernel launches.

use skewjoin_common::hash::RadixConfig;
use skewjoin_common::{JoinError, Key};
use skewjoin_gpu_sim::BufferId;

use crate::backend::{BlockOps, DeviceKernel, GpuBackend};
use crate::pack::key_of;

/// A partitioned relation resident in device memory.
#[derive(Debug, Clone)]
pub struct DevicePartitioned {
    /// Device buffer holding the tuples grouped by final partition.
    pub buf: BufferId,
    /// Partition start offsets (length = partitions + 1).
    pub starts: Vec<usize>,
}

impl DevicePartitioned {
    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.starts.len() - 1
    }

    /// Size of partition `pid` in tuples.
    pub fn size(&self, pid: usize) -> usize {
        self.starts[pid + 1] - self.starts[pid]
    }

    /// Range of partition `pid` within the buffer.
    pub fn range(&self, pid: usize) -> std::ops::Range<usize> {
        self.starts[pid]..self.starts[pid + 1]
    }
}

/// Final (pass-major) partition id of `key` — must agree between R and S and
/// with the CPU implementation's `memory_pid`.
#[inline]
pub fn final_pid(cfg: &RadixConfig, key: Key) -> usize {
    let mut pid = 0usize;
    for pass in 0..cfg.bits_per_pass.len() {
        pid = (pid << cfg.bits_per_pass[pass]) | cfg.partition_of(key, pass);
    }
    pid
}

/// Cost style of the partitioning kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStyle {
    /// GSH: count kernel + scan + contention-free scatter (two scans/pass).
    CountScatter,
    /// Gbase: single scan per pass with atomic bucket cursors; an extra
    /// allocation atomic fires per `bucket_capacity` tuples.
    LinkedBuckets {
        /// Tuples per linked bucket.
        bucket_capacity: usize,
    },
}

/// Tuples each block processes per pass (block-striped chunks).
fn chunk_size(block_dim: usize) -> usize {
    block_dim * 8
}

/// Partitions `input` (packed tuples) with all passes of `cfg`. Returns the
/// partitioned buffer + directory; intermediate buffers are freed.
pub fn gpu_partition(
    backend: &mut dyn GpuBackend,
    input: BufferId,
    cfg: &RadixConfig,
    style: PartitionStyle,
    block_dim: usize,
) -> Result<DevicePartitioned, JoinError> {
    let n = backend.buffer_len(input);

    // ---- Pass 0 over the whole input. ----
    let out0 = backend.alloc(n, 8, &format!("partition buffer ({n} tuples)"))?;
    let starts0 = run_pass(
        backend,
        input,
        None,
        out0,
        cfg,
        0,
        style,
        block_dim,
        "partition_pass0",
    )?;

    if cfg.bits_per_pass.len() == 1 {
        return Ok(DevicePartitioned {
            buf: out0,
            starts: starts0,
        });
    }

    // ---- Pass 1: one block-group per parent partition. ----
    let out1 = backend.alloc(n, 8, &format!("second partition buffer ({n} tuples)"))?;
    let starts1 = run_pass(
        backend,
        out0,
        Some(&starts0),
        out1,
        cfg,
        1,
        style,
        block_dim,
        "partition_pass1",
    )?;
    backend.free(out0);

    assert!(
        cfg.bits_per_pass.len() <= 2,
        "GPU partitioning supports at most two passes (as in the paper)"
    );

    Ok(DevicePartitioned {
        buf: out1,
        starts: starts1,
    })
}

/// Runs one radix pass. With `parent_starts == None` the pass covers the
/// whole input in block-striped chunks; otherwise each parent partition is
/// processed by its own chunk-blocks and children stay within the parent's
/// range (pass-major order).
#[allow(clippy::too_many_arguments)]
fn run_pass(
    backend: &mut dyn GpuBackend,
    input: BufferId,
    parent_starts: Option<&[usize]>,
    output: BufferId,
    cfg: &RadixConfig,
    pass: usize,
    style: PartitionStyle,
    block_dim: usize,
    name: &str,
) -> Result<Vec<usize>, JoinError> {
    let n = backend.buffer_len(input);
    let fanout = cfg.fanout(pass);
    let chunk = chunk_size(block_dim);

    // Host-side block plan: (input range, output base) per block. For pass 0
    // the output base is the global array; for pass 1 each parent's children
    // are scattered within the parent's own range.
    let ranges: Vec<(usize, usize)> = match parent_starts {
        None => vec![(0, n)],
        Some(starts) => starts.windows(2).map(|w| (w[0], w[1])).collect(),
    };

    // Per-region chunk blocks.
    let mut blocks: Vec<BlockPlan> = Vec::new();
    for (region_idx, &(lo, hi)) in ranges.iter().enumerate() {
        let mut start = lo;
        while start < hi {
            let end = (start + chunk).min(hi);
            blocks.push(BlockPlan {
                region: region_idx,
                range: start..end,
            });
            start = end;
        }
        // Empty regions simply contribute no blocks; their child starts are
        // still emitted below so the directory stays dense.
    }

    // Functional pre-computation of per-block histograms and write cursors
    // (host mirror of what the count kernel + scan produce).
    let data_snapshot: Vec<u64> = backend.host_slice(input).to_vec();
    let mut block_hists: Vec<Vec<usize>> = Vec::with_capacity(blocks.len());
    for plan in &blocks {
        let mut hist = vec![0usize; fanout];
        for &word in &data_snapshot[plan.range.clone()] {
            hist[cfg.partition_of(key_of(word), pass)] += 1;
        }
        block_hists.push(hist);
    }

    // Region-local child offsets: children of a region are contiguous and
    // ordered, blocks within a region write in block order.
    let mut region_child_sizes: Vec<Vec<usize>> = vec![vec![0usize; fanout]; ranges.len()];
    for (plan, hist) in blocks.iter().zip(&block_hists) {
        for (p, &c) in hist.iter().enumerate() {
            region_child_sizes[plan.region][p] += c;
        }
    }
    let mut region_child_starts: Vec<Vec<usize>> = Vec::with_capacity(ranges.len());
    for (region_idx, sizes) in region_child_sizes.iter().enumerate() {
        let mut acc = ranges[region_idx].0;
        let mut starts = Vec::with_capacity(fanout + 1);
        for &s in sizes {
            starts.push(acc);
            acc += s;
        }
        starts.push(acc);
        region_child_starts.push(starts);
    }
    // Per-block write cursors.
    let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(blocks.len());
    {
        let mut rolling: Vec<Vec<usize>> = region_child_starts
            .iter()
            .map(|s| s[..fanout].to_vec())
            .collect();
        for (plan, hist) in blocks.iter().zip(&block_hists) {
            cursors.push(rolling[plan.region].clone());
            for (p, &c) in hist.iter().enumerate() {
                rolling[plan.region][p] += c;
            }
        }
    }

    // ---- Count kernel (CountScatter style only) + scan accounting. ----
    if matches!(style, PartitionStyle::CountScatter) {
        let mut count_kernel = CountKernel {
            input,
            cfg,
            pass,
            blocks: &blocks,
            scratch: Scratch::default(),
        };
        backend.launch(
            &format!("{name}_count"),
            blocks.len().max(1),
            block_dim,
            &mut count_kernel,
        )?;
        // Scan over (blocks × fanout) counters.
        let words = (blocks.len() * fanout) as u64;
        let mut scan = StreamKernel {
            bytes: words * 8, // read + write once each (4 B counters, 2 ops)
        };
        backend.launch(&format!("{name}_scan"), 1, block_dim, &mut scan)?;
    }

    // ---- Scatter kernel. ----
    let mut scatter = ScatterKernel {
        input,
        output,
        cfg,
        pass,
        blocks: &blocks,
        cursors,
        style,
        scratch: Scratch::default(),
    };
    backend.launch(
        &format!("{name}_scatter"),
        blocks.len().max(1),
        block_dim,
        &mut scatter,
    )?;

    // Flattened child directory in pass-major order; the terminator is the
    // end of the data region.
    let mut out_starts = Vec::with_capacity(ranges.len() * fanout + 1);
    for starts in &region_child_starts {
        out_starts.extend_from_slice(&starts[..fanout]);
    }
    out_starts.push(ranges.last().map(|&(_, hi)| hi).unwrap_or(n));
    Ok(out_starts)
}

struct BlockPlan {
    region: usize,
    range: std::ops::Range<usize>,
}

/// Reusable per-kernel scratch vectors (avoids allocation per warp call).
#[derive(Default)]
struct Scratch {
    idx: Vec<usize>,
    vals: Vec<u64>,
    writes: Vec<(usize, u64)>,
    atomic_ops: Vec<(usize, u64)>,
    old: Vec<u64>,
}

/// Count kernel: histograms a block's chunk into shared memory, then flushes
/// the counters to global memory.
struct CountKernel<'a> {
    input: BufferId,
    cfg: &'a RadixConfig,
    pass: usize,
    blocks: &'a [BlockPlan],
    scratch: Scratch,
}

impl DeviceKernel for CountKernel<'_> {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let Some(plan) = self.blocks.get(ctx.block_idx()) else {
            return;
        };
        let fanout = self.cfg.fanout(self.pass);
        let hist = ctx.shared_alloc(fanout, 4);
        let warp = ctx.warp_size();
        let mut i = plan.range.start;
        while i < plan.range.end {
            let hi = (i + warp).min(plan.range.end);
            self.scratch.idx.clear();
            self.scratch.idx.extend(i..hi);
            ctx.warp_gather(self.input, &self.scratch.idx, &mut self.scratch.vals);
            ctx.alu(2); // hash + digit extract
            self.scratch.atomic_ops.clear();
            self.scratch.atomic_ops.extend(
                self.scratch
                    .vals
                    .iter()
                    .map(|&w| (self.cfg.partition_of(key_of(w), self.pass), 1u64)),
            );
            ctx.shared_atomic_add(hist, &self.scratch.atomic_ops, &mut self.scratch.old);
            i = hi;
        }
        ctx.syncthreads();
        // Flush fanout counters to the global histogram array (coalesced).
        ctx.account_stream_bytes((fanout * 4) as u64);
    }
}

/// Scatter kernel: re-reads the chunk and writes each tuple at its
/// prefix-summed position. `LinkedBuckets` style charges atomic cursor
/// traffic and bucket-allocation atomics instead of the (free) register
/// cursors of the count-then-scatter scheme.
struct ScatterKernel<'a> {
    input: BufferId,
    output: BufferId,
    cfg: &'a RadixConfig,
    pass: usize,
    blocks: &'a [BlockPlan],
    /// Per-block write cursors per child partition (host-precomputed; relies
    /// on the backend contract that blocks run in block-index order).
    cursors: Vec<Vec<usize>>,
    style: PartitionStyle,
    scratch: Scratch,
}

impl DeviceKernel for ScatterKernel<'_> {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        let Some(plan) = self.blocks.get(ctx.block_idx()) else {
            return;
        };
        let cursors = &mut self.cursors[ctx.block_idx()];
        let warp = ctx.warp_size();
        let mut i = plan.range.start;
        while i < plan.range.end {
            let hi = (i + warp).min(plan.range.end);
            self.scratch.idx.clear();
            self.scratch.idx.extend(i..hi);
            ctx.warp_gather(self.input, &self.scratch.idx, &mut self.scratch.vals);
            ctx.alu(2);

            self.scratch.writes.clear();
            match self.style {
                PartitionStyle::CountScatter => {
                    for &w in &self.scratch.vals {
                        let p = self.cfg.partition_of(key_of(w), self.pass);
                        self.scratch.writes.push((cursors[p], w));
                        cursors[p] += 1;
                    }
                }
                PartitionStyle::LinkedBuckets { bucket_capacity } => {
                    // One atomic cursor bump per lane; serialization grows
                    // with same-partition lanes (skew makes this worse).
                    let mut max_dup = 1u64;
                    let mut seen: Vec<(usize, u64)> = Vec::new();
                    for &w in &self.scratch.vals {
                        let p = self.cfg.partition_of(key_of(w), self.pass);
                        match seen.iter_mut().find(|(q, _)| *q == p) {
                            Some((_, c)) => {
                                *c += 1;
                                max_dup = max_dup.max(*c);
                            }
                            None => seen.push((p, 1)),
                        }
                        let pos = cursors[p];
                        cursors[p] += 1;
                        // Crossing a bucket boundary = allocate a new bucket:
                        // one more global atomic + a pointer write.
                        if pos % bucket_capacity == 0 {
                            ctx.charge_global_atomics(1, 1);
                            ctx.account_stream_bytes(8);
                        }
                        self.scratch.writes.push((pos, w));
                    }
                    ctx.charge_global_atomics(1, max_dup);
                }
            }
            ctx.warp_scatter(self.output, &self.scratch.writes);
            i = hi;
        }
    }
}

/// Accounts a flat byte stream (used to model scan kernels over counter
/// arrays).
struct StreamKernel {
    bytes: u64,
}

impl DeviceKernel for StreamKernel {
    fn block(&mut self, ctx: &mut dyn BlockOps) {
        ctx.account_stream_bytes(self.bytes * 2); // read + write
        ctx.alu(self.bytes / 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{HostBackend, SimBackend};
    use crate::pack::{pack, unpack};
    use skewjoin_common::{Relation, Tuple};
    use skewjoin_gpu_sim::DeviceSpec;

    fn upload(backend: &mut dyn GpuBackend, rel: &Relation) -> BufferId {
        crate::pack::upload_relation(backend, rel, "test input").expect("fits")
    }

    fn check_partitioned(
        backend: &dyn GpuBackend,
        parted: &DevicePartitioned,
        cfg: &RadixConfig,
        original: &Relation,
    ) {
        assert_eq!(*parted.starts.last().unwrap(), original.len());
        // Multiset preserved.
        let mut got: Vec<Tuple> = backend
            .host_slice(parted.buf)
            .iter()
            .map(|&w| unpack(w))
            .collect();
        let mut orig = original.tuples().to_vec();
        got.sort_unstable_by_key(|t| (t.key, t.payload));
        orig.sort_unstable_by_key(|t| (t.key, t.payload));
        assert_eq!(got, orig);
        // Every tuple in its final_pid partition.
        for pid in 0..parted.partitions() {
            for i in parted.range(pid) {
                let t = unpack(backend.host_read(parted.buf, i));
                assert_eq!(final_pid(cfg, t.key), pid, "tuple at {i}");
            }
        }
    }

    fn test_relation(n: usize) -> Relation {
        Relation::from_tuples(
            (0..n)
                .map(|i| Tuple::new((i as u32).wrapping_mul(2654435761) % 113, i as u32))
                .collect(),
        )
    }

    #[test]
    fn count_scatter_two_pass() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let rel = test_relation(5000);
        let buf = upload(&mut backend, &rel);
        let cfg = RadixConfig::two_pass(6);
        let parted =
            gpu_partition(&mut backend, buf, &cfg, PartitionStyle::CountScatter, 64).unwrap();
        assert_eq!(parted.partitions(), 64);
        check_partitioned(&backend, &parted, &cfg, &rel);
        assert!(backend.total_cycles() > 0);
    }

    #[test]
    fn linked_buckets_two_pass() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let rel = test_relation(3000);
        let buf = upload(&mut backend, &rel);
        let cfg = RadixConfig::two_pass(4);
        let parted = gpu_partition(
            &mut backend,
            buf,
            &cfg,
            PartitionStyle::LinkedBuckets {
                bucket_capacity: 64,
            },
            64,
        )
        .unwrap();
        check_partitioned(&backend, &parted, &cfg, &rel);
    }

    #[test]
    fn single_pass_partitioning() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let rel = test_relation(1000);
        let buf = upload(&mut backend, &rel);
        let cfg = RadixConfig::single_pass(3);
        let parted =
            gpu_partition(&mut backend, buf, &cfg, PartitionStyle::CountScatter, 32).unwrap();
        assert_eq!(parted.partitions(), 8);
        check_partitioned(&backend, &parted, &cfg, &rel);
    }

    #[test]
    fn empty_input() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let rel = Relation::new();
        let buf = upload(&mut backend, &rel);
        let cfg = RadixConfig::two_pass(4);
        let parted =
            gpu_partition(&mut backend, buf, &cfg, PartitionStyle::CountScatter, 32).unwrap();
        assert_eq!(parted.partitions(), 16);
        assert!(parted.starts.iter().all(|&s| s == 0));
    }

    #[test]
    fn single_hot_key_lands_in_one_partition() {
        let mut backend = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let rel = Relation::from_tuples(vec![Tuple::new(42, 7); 1000]);
        let buf = upload(&mut backend, &rel);
        let cfg = RadixConfig::two_pass(6);
        let parted =
            gpu_partition(&mut backend, buf, &cfg, PartitionStyle::CountScatter, 64).unwrap();
        let non_empty: Vec<usize> = (0..parted.partitions())
            .filter(|&p| parted.size(p) > 0)
            .collect();
        assert_eq!(non_empty.len(), 1);
        assert_eq!(parted.size(non_empty[0]), 1000);
        assert_eq!(pack(Tuple::new(42, 7)), backend.host_read(parted.buf, 0));
    }

    #[test]
    fn linked_buckets_cost_more_atomics_than_count_scatter() {
        let rel = test_relation(4000);
        let cfg = RadixConfig::two_pass(4);

        let mut backend_a = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let buf_a = upload(&mut backend_a, &rel);
        gpu_partition(
            &mut backend_a,
            buf_a,
            &cfg,
            PartitionStyle::CountScatter,
            64,
        )
        .unwrap();
        let atomics_a: u64 = backend_a
            .launch_log()
            .iter()
            .map(|l| l.metrics.atomic_cycles)
            .sum();

        let mut backend_b = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let buf_b = upload(&mut backend_b, &rel);
        gpu_partition(
            &mut backend_b,
            buf_b,
            &cfg,
            PartitionStyle::LinkedBuckets {
                bucket_capacity: 64,
            },
            64,
        )
        .unwrap();
        let atomics_b: u64 = backend_b
            .launch_log()
            .iter()
            .map(|l| l.metrics.atomic_cycles)
            .sum();

        // Gbase pays global atomics per warp; GSH only cheap shared-hist
        // atomics in the count kernel.
        assert!(
            atomics_b > atomics_a,
            "linked buckets {atomics_b} ≤ count-scatter {atomics_a}"
        );
    }

    #[test]
    fn host_backend_partitions_identically_to_sim() {
        let rel = test_relation(5000);
        let cfg = RadixConfig::two_pass(6);

        let mut sim = SimBackend::new(DeviceSpec::tiny(1 << 22));
        let sim_buf = upload(&mut sim, &rel);
        let sim_parted =
            gpu_partition(&mut sim, sim_buf, &cfg, PartitionStyle::CountScatter, 64).unwrap();

        let mut host = HostBackend::new(DeviceSpec::tiny(1 << 22));
        let host_buf = upload(&mut host, &rel);
        let host_parted =
            gpu_partition(&mut host, host_buf, &cfg, PartitionStyle::CountScatter, 64).unwrap();

        assert_eq!(sim_parted.starts, host_parted.starts);
        assert_eq!(
            sim.host_slice(sim_parted.buf),
            host.host_slice(host_parted.buf)
        );
        assert_eq!(host.total_cycles(), 0);
        check_partitioned(&host, &host_parted, &cfg, &rel);
    }
}
