//! Property tests on the GPU partitioning kernels: both cost styles must
//! produce exact partitionings for arbitrary inputs, and the directory must
//! agree with `final_pid`.

use proptest::prelude::*;

use skewjoin_common::hash::RadixConfig;
use skewjoin_common::{Relation, Tuple};
use skewjoin_gpu::pack::{unpack, upload_relation};
use skewjoin_gpu::partition::{final_pid, gpu_partition, PartitionStyle};
use skewjoin_gpu_sim::{Device, DeviceSpec};

fn check(keys: &[u32], bits: u32, style: PartitionStyle, block_dim: usize) -> Result<(), String> {
    let rel = Relation::from_keys(keys);
    let mut dev = Device::new(DeviceSpec::tiny(1 << 24));
    let buf = upload_relation(&mut dev, &rel).ok_or("alloc failed")?;
    let cfg = RadixConfig::two_pass(bits);
    let parted = gpu_partition(&mut dev, buf, &cfg, style, block_dim);

    if *parted.starts.last().unwrap() != rel.len() {
        return Err("directory total mismatch".into());
    }
    // Multiset preserved.
    let mut got: Vec<Tuple> = dev
        .memory
        .host_slice(parted.buf)
        .iter()
        .map(|&w| unpack(w))
        .collect();
    let mut orig = rel.tuples().to_vec();
    got.sort_unstable_by_key(|t| (t.key, t.payload));
    orig.sort_unstable_by_key(|t| (t.key, t.payload));
    if got != orig {
        return Err("multiset changed".into());
    }
    // Placement agrees with final_pid.
    for pid in 0..parted.partitions() {
        for i in parted.range(pid) {
            let t = unpack(dev.memory.host_read(parted.buf, i));
            if final_pid(&cfg, t.key) != pid {
                return Err(format!("tuple {t:?} misplaced in {pid}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn count_scatter_partitions_exactly(
        keys in prop::collection::vec(any::<u32>(), 0..600),
        bits in 2u32..8,
    ) {
        check(&keys, bits, PartitionStyle::CountScatter, 64)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn linked_buckets_partitions_exactly(
        keys in prop::collection::vec(0u32..64, 0..600), // collision-heavy
        bits in 2u32..8,
        bucket_capacity in 1usize..100,
    ) {
        check(
            &keys,
            bits,
            PartitionStyle::LinkedBuckets { bucket_capacity },
            32,
        )
        .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn styles_produce_identical_directories(
        keys in prop::collection::vec(any::<u32>(), 1..400),
        bits in 2u32..6,
    ) {
        let rel = Relation::from_keys(&keys);
        let cfg = RadixConfig::two_pass(bits);

        let mut dev_a = Device::new(DeviceSpec::tiny(1 << 24));
        let buf_a = upload_relation(&mut dev_a, &rel).unwrap();
        let a = gpu_partition(&mut dev_a, buf_a, &cfg, PartitionStyle::CountScatter, 64);

        let mut dev_b = Device::new(DeviceSpec::tiny(1 << 24));
        let buf_b = upload_relation(&mut dev_b, &rel).unwrap();
        let b = gpu_partition(
            &mut dev_b,
            buf_b,
            &cfg,
            PartitionStyle::LinkedBuckets { bucket_capacity: 32 },
            64,
        );
        prop_assert_eq!(&a.starts, &b.starts);
    }
}
