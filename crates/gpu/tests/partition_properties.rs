//! Property-style tests on the GPU partitioning kernels, run over
//! deterministic seeded case batteries: both cost styles must produce exact
//! partitionings for arbitrary inputs, and the directory must agree with
//! `final_pid`.

use skewjoin_common::hash::RadixConfig;
use skewjoin_common::{Relation, Tuple};
use skewjoin_gpu::backend::GpuBackendKind;
use skewjoin_gpu::pack::{unpack, upload_relation};
use skewjoin_gpu::partition::{final_pid, gpu_partition, PartitionStyle};
use skewjoin_gpu_sim::DeviceSpec;

/// Minimal deterministic generator (splitmix64) for the case batteries.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn keys(&mut self, max_len: usize, key_bound: u64) -> Vec<u32> {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| (self.next_u64() % key_bound) as u32)
            .collect()
    }
}

fn check(
    keys: &[u32],
    bits: u32,
    style: PartitionStyle,
    block_dim: usize,
    kind: GpuBackendKind,
) -> Result<(), String> {
    let rel = Relation::from_keys(keys);
    let mut dev = kind
        .create(&DeviceSpec::tiny(1 << 24))
        .map_err(|e| e.to_string())?;
    let dev = dev.as_mut();
    let buf = upload_relation(dev, &rel, "table R").map_err(|e| e.to_string())?;
    let cfg = RadixConfig::two_pass(bits);
    let parted = gpu_partition(dev, buf, &cfg, style, block_dim).map_err(|e| e.to_string())?;

    if *parted.starts.last().unwrap() != rel.len() {
        return Err("directory total mismatch".into());
    }
    // Multiset preserved.
    let mut got: Vec<Tuple> = dev
        .host_slice(parted.buf)
        .iter()
        .map(|&w| unpack(w))
        .collect();
    let mut orig = rel.tuples().to_vec();
    got.sort_unstable_by_key(|t| (t.key, t.payload));
    orig.sort_unstable_by_key(|t| (t.key, t.payload));
    if got != orig {
        return Err("multiset changed".into());
    }
    // Placement agrees with final_pid.
    for pid in 0..parted.partitions() {
        for i in parted.range(pid) {
            let t = unpack(dev.host_read(parted.buf, i));
            if final_pid(&cfg, t.key) != pid {
                return Err(format!("tuple {t:?} misplaced in {pid}"));
            }
        }
    }
    Ok(())
}

#[test]
fn count_scatter_partitions_exactly() {
    let mut rng = TestRng::new(0x6B_0001);
    for case in 0..32 {
        let keys = rng.keys(600, u64::from(u32::MAX) + 1);
        let bits = 2 + rng.below(6) as u32;
        for kind in [GpuBackendKind::Sim, GpuBackendKind::Host] {
            check(&keys, bits, PartitionStyle::CountScatter, 64, kind)
                .unwrap_or_else(|e| panic!("case {case} on {kind}: {e}"));
        }
    }
}

#[test]
fn linked_buckets_partitions_exactly() {
    let mut rng = TestRng::new(0x6B_0002);
    for case in 0..32 {
        let keys = rng.keys(600, 64); // collision-heavy
        let bits = 2 + rng.below(6) as u32;
        let bucket_capacity = 1 + rng.below(99);
        for kind in [GpuBackendKind::Sim, GpuBackendKind::Host] {
            check(
                &keys,
                bits,
                PartitionStyle::LinkedBuckets { bucket_capacity },
                32,
                kind,
            )
            .unwrap_or_else(|e| panic!("case {case} on {kind}: {e}"));
        }
    }
}

#[test]
fn styles_produce_identical_directories() {
    let mut rng = TestRng::new(0x6B_0003);
    for case in 0..32 {
        let mut keys = rng.keys(400, u64::from(u32::MAX) + 1);
        if keys.is_empty() {
            keys.push(rng.next_u64() as u32);
        }
        let bits = 2 + rng.below(4) as u32;
        let rel = Relation::from_keys(&keys);
        let cfg = RadixConfig::two_pass(bits);

        let mut dev_a = GpuBackendKind::Sim
            .create(&DeviceSpec::tiny(1 << 24))
            .unwrap();
        let buf_a = upload_relation(dev_a.as_mut(), &rel, "table R").unwrap();
        let a = gpu_partition(
            dev_a.as_mut(),
            buf_a,
            &cfg,
            PartitionStyle::CountScatter,
            64,
        )
        .unwrap();

        let mut dev_b = GpuBackendKind::Sim
            .create(&DeviceSpec::tiny(1 << 24))
            .unwrap();
        let buf_b = upload_relation(dev_b.as_mut(), &rel, "table R").unwrap();
        let b = gpu_partition(
            dev_b.as_mut(),
            buf_b,
            &cfg,
            PartitionStyle::LinkedBuckets {
                bucket_capacity: 32,
            },
            64,
        )
        .unwrap();
        assert_eq!(&a.starts, &b.starts, "case {case}");
    }
}
