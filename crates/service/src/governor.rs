//! The memory governor: a global byte budget that every admitted query
//! reserves its estimated footprint against before executing.
//!
//! Estimates come from [`skewjoin::planner::estimate_join_memory`] — a
//! deliberate over-approximation, so the governor queues queries that might
//! have squeaked by rather than admitting one that OOMs the process.
//! Reservations are RAII: dropping a [`Reservation`] releases the bytes and
//! wakes waiters, so no error path can leak budget.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use skewjoin::common::CancelToken;

struct State {
    in_use: u64,
    peak: u64,
}

/// Why a reservation could not be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReserveError {
    /// The request alone exceeds the whole budget — waiting can never help.
    ExceedsBudget {
        /// Bytes requested.
        requested: u64,
        /// The governor's total budget.
        budget: u64,
    },
    /// The wait was cancelled (or its deadline expired) before space freed
    /// up.
    Cancelled,
}

/// A global memory budget with blocking reservations.
pub struct MemoryGovernor {
    budget: u64,
    state: Mutex<State>,
    freed: Condvar,
}

impl MemoryGovernor {
    /// A governor over `budget` bytes.
    pub fn new(budget: u64) -> Arc<Self> {
        Arc::new(Self {
            budget,
            state: Mutex::new(State { in_use: 0, peak: 0 }),
            freed: Condvar::new(),
        })
    }

    /// Reserves `bytes`, blocking while the budget is fully committed.
    /// Checks `cancel` (including its deadline) each time the wait wakes,
    /// so a cancelled query stops queuing instead of holding a worker.
    pub fn reserve(
        self: &Arc<Self>,
        bytes: u64,
        cancel: &CancelToken,
    ) -> Result<Reservation, ReserveError> {
        if bytes > self.budget {
            return Err(ReserveError::ExceedsBudget {
                requested: bytes,
                budget: self.budget,
            });
        }
        let mut state = self.lock();
        loop {
            if cancel.is_cancelled() {
                return Err(ReserveError::Cancelled);
            }
            if self.budget - state.in_use >= bytes {
                state.in_use += bytes;
                state.peak = state.peak.max(state.in_use);
                return Ok(Reservation {
                    governor: Arc::clone(self),
                    bytes,
                });
            }
            // Wake periodically even without a release so deadline expiry
            // is noticed; releases notify immediately.
            let (next, _) = self
                .freed
                .wait_timeout(state, Duration::from_millis(10))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
        }
    }

    /// Non-blocking variant: `None` when the bytes are not available right
    /// now (including the never-fits case).
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<Reservation> {
        if bytes > self.budget {
            return None;
        }
        let mut state = self.lock();
        if self.budget - state.in_use >= bytes {
            state.in_use += bytes;
            state.peak = state.peak.max(state.in_use);
            Some(Reservation {
                governor: Arc::clone(self),
                bytes,
            })
        } else {
            None
        }
    }

    /// Total budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn occupancy(&self) -> u64 {
        self.lock().in_use
    }

    /// High-water mark of [`occupancy`](Self::occupancy) — the acceptance
    /// criterion "peak governor occupancy ≤ budget" reads this.
    pub fn peak(&self) -> u64 {
        self.lock().peak
    }

    fn release(&self, bytes: u64) {
        let mut state = self.lock();
        state.in_use = state.in_use.saturating_sub(bytes);
        drop(state);
        self.freed.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A granted byte reservation; released on drop.
pub struct Reservation {
    governor: Arc<MemoryGovernor>,
    bytes: u64,
}

impl Reservation {
    /// Bytes this reservation holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.governor.release(self.bytes);
    }
}

impl std::fmt::Debug for Reservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservation")
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn reservations_release_on_drop_and_track_peak() {
        let gov = MemoryGovernor::new(1000);
        let a = gov.try_reserve(600).unwrap();
        assert_eq!(gov.occupancy(), 600);
        let b = gov.try_reserve(400).unwrap();
        assert_eq!(gov.occupancy(), 1000);
        assert!(gov.try_reserve(1).is_none());
        drop(a);
        assert_eq!(gov.occupancy(), 400);
        drop(b);
        assert_eq!(gov.occupancy(), 0);
        assert_eq!(gov.peak(), 1000);
    }

    #[test]
    fn oversized_requests_fail_fast() {
        let gov = MemoryGovernor::new(100);
        match gov.reserve(101, &CancelToken::none()) {
            Err(ReserveError::ExceedsBudget { requested, budget }) => {
                assert_eq!((requested, budget), (101, 100));
            }
            other => panic!("expected ExceedsBudget, got {other:?}"),
        }
    }

    #[test]
    fn blocked_reserve_proceeds_when_space_frees() {
        let gov = MemoryGovernor::new(100);
        let held = gov.try_reserve(80).unwrap();
        let waiter = {
            let gov = Arc::clone(&gov);
            std::thread::spawn(move || gov.reserve(50, &CancelToken::none()).map(|r| r.bytes()))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().unwrap(), Ok(50));
        assert_eq!(gov.occupancy(), 0);
    }

    #[test]
    fn deadline_expiry_unblocks_a_waiting_reserve() {
        let gov = MemoryGovernor::new(100);
        let _held = gov.try_reserve(100).unwrap();
        let cancel = CancelToken::with_timeout(Duration::from_millis(30));
        let start = Instant::now();
        assert!(matches!(
            gov.reserve(50, &cancel),
            Err(ReserveError::Cancelled)
        ));
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
