//! The memory governor: a global byte budget that every admitted query
//! reserves its estimated footprint against before executing.
//!
//! Estimates come from [`skewjoin::planner::estimate_join_memory`] — a
//! deliberate over-approximation, so the governor queues queries that might
//! have squeaked by rather than admitting one that OOMs the process.
//! Reservations are RAII: dropping a [`Reservation`] releases the bytes and
//! wakes waiters, so no error path can leak budget.
//!
//! Alongside the memory pool the governor can carry a **scratch-disk pool**
//! for spilled joins (see [`MemoryGovernor::with_disk`]). Disk reservations
//! follow the same contract — blocking waits, cancellation-aware, RAII
//! release — against an independent budget, so an over-budget join that
//! degrades to the grace-hash spill rung reserves its bounded working set
//! from memory *and* its scratch footprint from disk before touching either.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use skewjoin::common::CancelToken;

/// Which of the governor's two budgets a reservation draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Memory,
    Disk,
}

#[derive(Default)]
struct PoolState {
    in_use: u64,
    peak: u64,
}

struct State {
    mem: PoolState,
    disk: PoolState,
    /// Reservation requests currently blocked in a wait loop (either pool).
    /// The service derives its `retry_after` hint from this: a deep wait
    /// queue means freed budget will be contended, so rejected clients
    /// should back off longer.
    waiters: u64,
}

/// Why a reservation could not be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReserveError {
    /// The request alone exceeds the whole budget — waiting can never help.
    ExceedsBudget {
        /// Bytes requested.
        requested: u64,
        /// The governor's total budget.
        budget: u64,
    },
    /// The wait was cancelled (or its deadline expired) before space freed
    /// up.
    Cancelled,
}

/// A global memory budget (and optional scratch-disk budget) with blocking
/// reservations.
pub struct MemoryGovernor {
    budget: u64,
    disk_budget: u64,
    state: Mutex<State>,
    freed: Condvar,
}

impl MemoryGovernor {
    /// A governor over `budget` bytes of memory, with no disk pool: every
    /// disk reservation fails fast with [`ReserveError::ExceedsBudget`].
    pub fn new(budget: u64) -> Arc<Self> {
        Self::with_disk(budget, 0)
    }

    /// A governor over `budget` bytes of memory and `disk_budget` bytes of
    /// spill scratch space.
    pub fn with_disk(budget: u64, disk_budget: u64) -> Arc<Self> {
        Arc::new(Self {
            budget,
            disk_budget,
            state: Mutex::new(State {
                mem: PoolState::default(),
                disk: PoolState::default(),
                waiters: 0,
            }),
            freed: Condvar::new(),
        })
    }

    /// Reserves `bytes` of memory, blocking while the budget is fully
    /// committed. Checks `cancel` (including its deadline) each time the
    /// wait wakes, so a cancelled query stops queuing instead of holding a
    /// worker.
    pub fn reserve(
        self: &Arc<Self>,
        bytes: u64,
        cancel: &CancelToken,
    ) -> Result<Reservation, ReserveError> {
        self.reserve_in(Pool::Memory, bytes, cancel)
    }

    /// Non-blocking variant of [`reserve`](Self::reserve): `None` when the
    /// bytes are not available right now (including the never-fits case).
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<Reservation> {
        self.try_reserve_in(Pool::Memory, bytes)
    }

    /// Reserves `bytes` of scratch-disk space, blocking like
    /// [`reserve`](Self::reserve). With no disk pool configured this fails
    /// fast with [`ReserveError::ExceedsBudget`] (budget 0).
    pub fn reserve_disk(
        self: &Arc<Self>,
        bytes: u64,
        cancel: &CancelToken,
    ) -> Result<Reservation, ReserveError> {
        self.reserve_in(Pool::Disk, bytes, cancel)
    }

    /// Non-blocking variant of [`reserve_disk`](Self::reserve_disk).
    pub fn try_reserve_disk(self: &Arc<Self>, bytes: u64) -> Option<Reservation> {
        self.try_reserve_in(Pool::Disk, bytes)
    }

    fn reserve_in(
        self: &Arc<Self>,
        pool: Pool,
        bytes: u64,
        cancel: &CancelToken,
    ) -> Result<Reservation, ReserveError> {
        let budget = self.budget_of(pool);
        if bytes > budget {
            return Err(ReserveError::ExceedsBudget {
                requested: bytes,
                budget,
            });
        }
        let mut state = self.lock();
        let mut waiting = false;
        let result = loop {
            if cancel.is_cancelled() {
                break Err(ReserveError::Cancelled);
            }
            let p = State::pool_mut(&mut state, pool);
            if budget - p.in_use >= bytes {
                p.in_use += bytes;
                p.peak = p.peak.max(p.in_use);
                break Ok(Reservation {
                    governor: Arc::clone(self),
                    pool,
                    bytes,
                });
            }
            if !waiting {
                waiting = true;
                state.waiters += 1;
            }
            // Wake periodically even without a release so deadline expiry
            // is noticed; releases notify immediately.
            let (next, _) = self
                .freed
                .wait_timeout(state, Duration::from_millis(10))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
        };
        if waiting {
            state.waiters -= 1;
        }
        result
    }

    fn try_reserve_in(self: &Arc<Self>, pool: Pool, bytes: u64) -> Option<Reservation> {
        let budget = self.budget_of(pool);
        if bytes > budget {
            return None;
        }
        let mut state = self.lock();
        let p = State::pool_mut(&mut state, pool);
        if budget - p.in_use >= bytes {
            p.in_use += bytes;
            p.peak = p.peak.max(p.in_use);
            Some(Reservation {
                governor: Arc::clone(self),
                pool,
                bytes,
            })
        } else {
            None
        }
    }

    fn budget_of(&self, pool: Pool) -> u64 {
        match pool {
            Pool::Memory => self.budget,
            Pool::Disk => self.disk_budget,
        }
    }

    /// Total memory budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Total scratch-disk budget in bytes (0 when no disk pool exists).
    pub fn disk_budget(&self) -> u64 {
        self.disk_budget
    }

    /// Memory bytes currently reserved.
    pub fn occupancy(&self) -> u64 {
        self.lock().mem.in_use
    }

    /// High-water mark of [`occupancy`](Self::occupancy) — the acceptance
    /// criterion "peak governor occupancy ≤ budget" reads this.
    pub fn peak(&self) -> u64 {
        self.lock().mem.peak
    }

    /// Scratch-disk bytes currently reserved.
    pub fn disk_occupancy(&self) -> u64 {
        self.lock().disk.in_use
    }

    /// High-water mark of [`disk_occupancy`](Self::disk_occupancy).
    pub fn disk_peak(&self) -> u64 {
        self.lock().disk.peak
    }

    /// Reservation requests currently blocked waiting for budget (either
    /// pool). A point-in-time congestion signal, not a counter.
    pub fn waiters(&self) -> u64 {
        self.lock().waiters
    }

    fn release(&self, pool: Pool, bytes: u64) {
        let mut state = self.lock();
        let p = State::pool_mut(&mut state, pool);
        p.in_use = p.in_use.saturating_sub(bytes);
        drop(state);
        self.freed.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl State {
    fn pool_mut(state: &mut State, pool: Pool) -> &mut PoolState {
        match pool {
            Pool::Memory => &mut state.mem,
            Pool::Disk => &mut state.disk,
        }
    }
}

/// A granted byte reservation against one of the governor's pools; released
/// on drop.
pub struct Reservation {
    governor: Arc<MemoryGovernor>,
    pool: Pool,
    bytes: u64,
}

impl Reservation {
    /// Bytes this reservation holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether this reservation draws from the scratch-disk pool.
    pub fn is_disk(&self) -> bool {
        self.pool == Pool::Disk
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.governor.release(self.pool, self.bytes);
    }
}

impl std::fmt::Debug for Reservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservation")
            .field("pool", &self.pool)
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn reservations_release_on_drop_and_track_peak() {
        let gov = MemoryGovernor::new(1000);
        let a = gov.try_reserve(600).unwrap();
        assert_eq!(gov.occupancy(), 600);
        let b = gov.try_reserve(400).unwrap();
        assert_eq!(gov.occupancy(), 1000);
        assert!(gov.try_reserve(1).is_none());
        drop(a);
        assert_eq!(gov.occupancy(), 400);
        drop(b);
        assert_eq!(gov.occupancy(), 0);
        assert_eq!(gov.peak(), 1000);
    }

    #[test]
    fn oversized_requests_fail_fast() {
        let gov = MemoryGovernor::new(100);
        match gov.reserve(101, &CancelToken::none()) {
            Err(ReserveError::ExceedsBudget { requested, budget }) => {
                assert_eq!((requested, budget), (101, 100));
            }
            other => panic!("expected ExceedsBudget, got {other:?}"),
        }
    }

    #[test]
    fn blocked_reserve_proceeds_when_space_frees() {
        let gov = MemoryGovernor::new(100);
        let held = gov.try_reserve(80).unwrap();
        let waiter = {
            let gov = Arc::clone(&gov);
            std::thread::spawn(move || gov.reserve(50, &CancelToken::none()).map(|r| r.bytes()))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().unwrap(), Ok(50));
        assert_eq!(gov.occupancy(), 0);
    }

    #[test]
    fn deadline_expiry_unblocks_a_waiting_reserve() {
        let gov = MemoryGovernor::new(100);
        let _held = gov.try_reserve(100).unwrap();
        let cancel = CancelToken::with_timeout(Duration::from_millis(30));
        let start = Instant::now();
        assert!(matches!(
            gov.reserve(50, &cancel),
            Err(ReserveError::Cancelled)
        ));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn disk_pool_is_independent_of_the_memory_pool() {
        let gov = MemoryGovernor::with_disk(100, 1000);
        let mem = gov.try_reserve(100).unwrap();
        // Memory exhaustion does not block disk, and vice versa.
        let disk = gov.try_reserve_disk(1000).unwrap();
        assert!(disk.is_disk());
        assert!(!mem.is_disk());
        assert_eq!(gov.occupancy(), 100);
        assert_eq!(gov.disk_occupancy(), 1000);
        assert!(gov.try_reserve_disk(1).is_none());
        drop(disk);
        assert_eq!(gov.disk_occupancy(), 0);
        assert_eq!(gov.disk_peak(), 1000);
        // `new` configures no disk pool: disk requests can never be granted.
        let no_disk = MemoryGovernor::new(100);
        assert!(matches!(
            no_disk.reserve_disk(1, &CancelToken::none()),
            Err(ReserveError::ExceedsBudget { budget: 0, .. })
        ));
    }

    #[test]
    fn panicking_holder_still_releases_both_pools() {
        // A worker that panics while holding reservations must not leak
        // budget: the RAII drop runs during unwinding, and the accounting a
        // later query sees is as if the panicked one had completed.
        let gov = MemoryGovernor::with_disk(100, 200);
        let gov2 = Arc::clone(&gov);
        let handle = std::thread::spawn(move || {
            let _mem = gov2.try_reserve(100).unwrap();
            let _disk = gov2.try_reserve_disk(200).unwrap();
            assert_eq!(gov2.occupancy(), 100);
            panic!("worker died mid-join");
        });
        assert!(handle.join().is_err());
        assert_eq!(gov.occupancy(), 0);
        assert_eq!(gov.disk_occupancy(), 0);
        // The budget is whole again: a full-budget reservation succeeds.
        let m = gov.try_reserve(100).unwrap();
        let d = gov.try_reserve_disk(200).unwrap();
        drop((m, d));
        assert_eq!(gov.peak(), 100);
        assert_eq!(gov.disk_peak(), 200);
    }

    #[test]
    fn waiters_gauge_rises_while_blocked_and_falls_after() {
        let gov = MemoryGovernor::with_disk(100, 100);
        assert_eq!(gov.waiters(), 0);
        let held = gov.try_reserve(100).unwrap();
        let waiter = {
            let gov = Arc::clone(&gov);
            std::thread::spawn(move || gov.reserve(60, &CancelToken::none()))
        };
        // The gauge reflects the blocked thread once it enters the wait.
        let mut saw_waiter = false;
        for _ in 0..200 {
            if gov.waiters() == 1 {
                saw_waiter = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_waiter, "waiter never observed in the gauge");
        drop(held);
        assert!(waiter.join().unwrap().is_ok());
        assert_eq!(gov.waiters(), 0);
    }
}
