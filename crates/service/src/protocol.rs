//! Length-prefixed TCP protocol: each frame is a `u32` big-endian byte
//! length followed by that many bytes of UTF-8 JSON.
//!
//! Ops (the `"op"` member of a request frame):
//!
//! * `"join"` (default) — a [`JoinRequest`]; answered with one
//!   [`JoinResponse`] frame once the join resolves.
//! * `"shard_join"` — a [`JoinRequest`] carrying a shard restriction: the
//!   cluster coordinator's per-shard task. Identical lifecycle to `"join"`,
//!   but the request must name its shard slice and the completed summary
//!   carries per-key counts and the shard trace so the coordinator can
//!   merge and diff-check the pieces.
//! * `"shard_status"` — answered with the shard's identity, protocol
//!   version, queue depth, and the full service snapshot; what the
//!   coordinator polls for liveness and accounting.
//! * `"metrics"` — answered with the service snapshot (metrics, governor,
//!   plan cache).
//! * `"ping"` — the hello/liveness probe. The reply always carries the
//!   server's `protocol_version`; a request that announces a different
//!   `protocol_version` is answered with `{"ok": false}` plus the server's
//!   version so the client can raise a typed
//!   [`ClientError::VersionMismatch`] instead of misparsing frames.
//!
//! Malformed frames get a `failed` response naming the parse error (id 0,
//! since no request was admitted) instead of a dropped connection; only a
//! broken transport closes the stream. A connection dying mid-frame — in
//! the middle of the 4-byte length prefix or inside the payload — surfaces
//! as a descriptive `ErrorKind::UnexpectedEof` ("torn frame"), never a
//! hang or a panic.
//!
//! [`Client`] reconnects: an op that fails with a connection-shaped error
//! (refused, reset, broken pipe, EOF mid-reply) transparently redials with
//! doubling backoff and retries, up to a bounded attempt count; exhaustion
//! surfaces as a typed [`ClientError::ConnectionLost`].

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use skewjoin::common::json::Json;

use crate::request::{JoinRequest, JoinResponse, Outcome};
use crate::service::JoinService;

/// Frames larger than this are refused — a corrupt length prefix must not
/// trigger a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Version of the frame protocol this build speaks. Carried in the
/// `ping` hello exchange; a mismatch is a typed
/// [`ClientError::VersionMismatch`], not a frame-parse failure.
pub const PROTOCOL_VERSION: u32 = 1;

/// Connection attempts a [`Client`] makes per op before reporting
/// [`ClientError::ConnectionLost`].
pub const DEFAULT_CLIENT_ATTEMPTS: u32 = 4;

/// Base backoff between client reconnection attempts; doubles per retry.
pub const DEFAULT_CLIENT_BACKOFF: Duration = Duration::from_millis(25);

/// Writes one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let body = json.to_string_pretty();
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed JSON frame.
///
/// A clean EOF *between* frames surfaces as `ErrorKind::UnexpectedEof`
/// with a "connection closed between frames" message; a connection dying
/// *inside* a frame — mid-length-prefix or mid-payload — is also
/// `UnexpectedEof` but describes the torn frame, so callers (and logs) can
/// tell a peer's orderly close from a crash mid-send.
pub fn read_frame(r: &mut impl Read) -> io::Result<Json> {
    // The length prefix is read incrementally: a peer can die after
    // sending 1–3 of the 4 bytes, and `read_exact` would erase that
    // distinction.
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed between frames",
                ));
            }
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "torn frame: connection closed after {filled} of 4 length-prefix bytes"
                    ),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("torn frame: connection closed inside a {len}-byte payload"),
            )
        } else {
            e
        }
    })?;
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))?;
    Json::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))
}

/// A running TCP front end over a [`JoinService`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `"127.0.0.1:0"` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. Existing
    /// connections drain on their own (they are client-driven); the
    /// underlying service keeps running until its own `shutdown`.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `service` over it until
/// [`ServerHandle::stop`].
pub fn serve(service: Arc<JoinService>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    serve_shard(service, addr, None)
}

/// [`serve`], with a cluster shard identity: `shard_status` and `ping`
/// replies name the slot, so a coordinator can confirm it dialed the shard
/// it meant to.
pub fn serve_shard(
    service: Arc<JoinService>,
    addr: impl ToSocketAddrs,
    shard: Option<u32>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("skewjoind-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let service = Arc::clone(&service);
                let _ = std::thread::Builder::new()
                    .name("skewjoind-conn".into())
                    .spawn(move || handle_connection(&service, stream, shard));
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(service: &JoinService, mut stream: TcpStream, shard: Option<u32>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown-peer".into());
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            // Clean close, torn frame, or broken transport: nothing left
            // to answer on this stream.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Describe the malformed frame, then resynchronization is
                // hopeless (the stream offset is lost), so close.
                let _ = write_frame(&mut stream, &protocol_error(&e.to_string()));
                return;
            }
            Err(_) => return,
        };
        let op = frame.get("op").and_then(Json::as_str).unwrap_or("join");
        let reply = match op {
            "ping" => ping_reply(&frame, shard),
            "metrics" => service.snapshot(),
            "shard_status" => {
                let mut fields = vec![
                    ("ok", Json::Bool(true)),
                    (
                        "protocol_version",
                        Json::from_u64(u64::from(PROTOCOL_VERSION)),
                    ),
                    ("queue_depth", Json::from_u64(service.queue_depth() as u64)),
                ];
                if let Some(slot) = shard {
                    fields.push(("shard", Json::from_u64(u64::from(slot))));
                }
                fields.push(("status", service.snapshot()));
                Json::obj(fields)
            }
            "join" | "shard_join" => match JoinRequest::from_json(&frame, &peer) {
                Ok(request) => {
                    if op == "shard_join" && request.shard.is_none() {
                        protocol_error("shard_join requires a \"shard\" restriction")
                    } else {
                        service.submit(request).wait().to_json()
                    }
                }
                Err(msg) => protocol_error(&msg),
            },
            other => protocol_error(&format!("unknown op {other:?}")),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// The `ping` reply: liveness plus the version handshake. A hello that
/// announces a foreign protocol version gets `ok: false` and the server's
/// version, which the client turns into a typed mismatch error.
fn ping_reply(frame: &Json, shard: Option<u32>) -> Json {
    let announced = frame
        .get("protocol_version")
        .and_then(Json::as_u64)
        .map(|v| v as u32);
    let compatible = !announced.is_some_and(|v| v != PROTOCOL_VERSION);
    let mut fields = vec![
        ("ok", Json::Bool(compatible)),
        (
            "protocol_version",
            Json::from_u64(u64::from(PROTOCOL_VERSION)),
        ),
    ];
    if let Some(slot) = shard {
        fields.push(("shard", Json::from_u64(u64::from(slot))));
    }
    if !compatible {
        fields.push((
            "error",
            Json::str(format!(
                "protocol version mismatch: client v{}, server v{PROTOCOL_VERSION}",
                announced.unwrap_or(0)
            )),
        ));
    }
    Json::obj(fields)
}

/// A `failed` response with id 0: the frame never became an admitted
/// request, so no service accounting applies.
fn protocol_error(msg: &str) -> Json {
    JoinResponse {
        id: 0,
        outcome: Outcome::Failed {
            error: format!("protocol error: {msg}"),
        },
    }
    .to_json()
}

/// Typed client-side failure of a protocol op.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and every reconnection attempt was exhausted.
    ConnectionLost {
        /// Connection attempts made (including the first).
        attempts: u32,
        /// The last transport error observed.
        last: String,
    },
    /// The server speaks a different protocol version.
    VersionMismatch {
        /// The version this client announced.
        client: u32,
        /// The version the server reported.
        server: u32,
    },
    /// The transport is healthy but the conversation is not: a malformed
    /// reply, an oversized frame, or a server-side frame rejection.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::ConnectionLost { attempts, last } => {
                write!(f, "connection lost after {attempts} attempt(s): {last}")
            }
            ClientError::VersionMismatch { client, server } => {
                write!(
                    f,
                    "protocol version mismatch: client v{client}, server v{server}"
                )
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Whether an I/O error is connection-shaped — worth a redial — rather
/// than a protocol-level failure that a fresh connection cannot fix.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
    )
}

/// A blocking client for the frame protocol, with bounded
/// reconnect-with-backoff on connection-shaped failures.
///
/// Retrying an op after a connection loss re-sends the request on a fresh
/// connection. That is safe for every op here: `ping`, `metrics`, and
/// `shard_status` are read-only, and join results exist only in the
/// response — a re-sent join re-executes but cannot double-deliver, which
/// is exactly the property the cluster coordinator's task reassignment
/// leans on.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    attempts: u32,
    backoff: Duration,
    version: u32,
}

impl Client {
    /// Connects to a running server and performs the version hello.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with(
            addr,
            PROTOCOL_VERSION,
            DEFAULT_CLIENT_ATTEMPTS,
            DEFAULT_CLIENT_BACKOFF,
        )
    }

    /// [`Client::connect`] with explicit retry policy and announced
    /// protocol version (tests use a foreign version to provoke the typed
    /// mismatch).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        version: u32,
        attempts: u32,
        backoff: Duration,
    ) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Protocol(format!("unresolvable address: {e}")))?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let mut client = Client {
            addr,
            stream: None,
            attempts: attempts.max(1),
            backoff,
            version,
        };
        client.hello()?;
        Ok(client)
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends the version hello and checks the reply.
    fn hello(&mut self) -> Result<(), ClientError> {
        let reply = self.request(&Json::obj(vec![
            ("op", Json::str("ping")),
            ("protocol_version", Json::from_u64(u64::from(self.version))),
        ]))?;
        self.check_version(&reply)
    }

    /// Raises [`ClientError::VersionMismatch`] if the reply names a
    /// protocol version other than ours. Replies without a version (a
    /// pre-versioning server) pass — the frames are compatible either way.
    fn check_version(&self, reply: &Json) -> Result<(), ClientError> {
        if let Some(server) = reply.get("protocol_version").and_then(Json::as_u64) {
            let server = server as u32;
            if server != self.version {
                return Err(ClientError::VersionMismatch {
                    client: self.version,
                    server,
                });
            }
        }
        Ok(())
    }

    /// One request/reply exchange with reconnect-with-backoff.
    fn request(&mut self, frame: &Json) -> Result<Json, ClientError> {
        let mut last: Option<io::Error> = None;
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff * (1 << (attempt - 1).min(8)));
            }
            match self.try_once(frame) {
                Ok(reply) => return Ok(reply),
                Err(e) if is_transient(&e) => {
                    // The stream offset is unknowable after a mid-frame
                    // failure; only a fresh connection is usable.
                    self.stream = None;
                    last = Some(e);
                }
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
        }
        Err(ClientError::ConnectionLost {
            attempts: self.attempts,
            last: last
                .map(|e| e.to_string())
                .unwrap_or_else(|| "unknown transport error".into()),
        })
    }

    fn try_once(&mut self, frame: &Json) -> io::Result<Json> {
        if self.stream.is_none() {
            self.stream = Some(TcpStream::connect(self.addr)?);
        }
        let stream = self.stream.as_mut().expect("stream just ensured");
        write_frame(stream, frame)?;
        read_frame(stream)
    }

    /// Submits a join and blocks for its response.
    pub fn join(&mut self, request: &JoinRequest) -> Result<JoinResponse, ClientError> {
        let reply = self.request(&request.to_json())?;
        JoinResponse::from_json(&reply)
            .map_err(|e| ClientError::Protocol(format!("bad response: {e}")))
    }

    /// Submits one shard task of a sharded join (a request carrying a
    /// shard restriction) and blocks for its response.
    pub fn shard_join(&mut self, request: &JoinRequest) -> Result<JoinResponse, ClientError> {
        let reply = self.request(&request.wire_json("shard_join"))?;
        JoinResponse::from_json(&reply)
            .map_err(|e| ClientError::Protocol(format!("bad response: {e}")))
    }

    /// Fetches the service snapshot.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", Json::str("metrics"))]))
    }

    /// Fetches the shard's identity, version, queue depth, and snapshot.
    pub fn shard_status(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", Json::str("shard_status"))]))
    }

    /// Liveness probe (also re-checks the protocol version).
    pub fn ping(&mut self) -> Result<bool, ClientError> {
        let reply = self.request(&Json::obj(vec![
            ("op", Json::str("ping")),
            ("protocol_version", Json::from_u64(u64::from(self.version))),
        ]))?;
        self.check_version(&reply)?;
        Ok(reply.get("ok").and_then(Json::as_bool).unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AlgoChoice;
    use crate::service::ServiceConfig;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let json = Json::obj(vec![("op", Json::str("ping")), ("n", Json::from_u64(7))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &json).unwrap();
        assert_eq!(
            u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize,
            buf.len() - 4
        );
        let back = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back.get("n").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_eof_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("torn frame"), "{err}");
    }

    #[test]
    fn torn_length_prefix_is_a_described_eof() {
        // The peer died after 2 of the 4 length-prefix bytes.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0u8])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(
            err.to_string().contains("2 of 4 length-prefix bytes"),
            "{err}"
        );
        // A clean close between frames is distinguishable.
        let err = read_frame(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("between frames"), "{err}");
    }

    fn tiny_server() -> (Arc<JoinService>, ServerHandle) {
        let mut cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServiceConfig::default()
        };
        cfg.join_config.cpu.threads = 2;
        let service = JoinService::start(cfg);
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        (service, handle)
    }

    #[test]
    fn tcp_round_trip_join_metrics_ping() {
        let (service, handle) = tiny_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(client.ping().unwrap());

        let req = JoinRequest::generate("wire", AlgoChoice::parse("csh").unwrap(), 2048, 0.9, 3);
        let resp = client.join(&req).unwrap();
        match resp.outcome {
            Outcome::Completed(summary) => assert!(summary.result_count > 0),
            other => panic!("expected completion over TCP, got {other:?}"),
        }

        let snapshot = client.metrics().unwrap();
        assert!(snapshot.get("governor").is_some());
        drop(client);
        handle.stop();
        service.shutdown();
    }

    #[test]
    fn malformed_wire_request_gets_a_typed_error_frame() {
        let (service, handle) = tiny_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Json::obj(vec![
                ("op", Json::str("join")),
                ("algo", Json::str("bogus")),
            ]),
        )
        .unwrap();
        let reply = read_frame(&mut stream).unwrap();
        let resp = JoinResponse::from_json(&reply).unwrap();
        match resp.outcome {
            Outcome::Failed { error } => assert!(error.contains("bogus")),
            other => panic!("expected a protocol error, got {other:?}"),
        }
        drop(stream);
        handle.stop();
        service.shutdown();
    }

    #[test]
    fn server_survives_torn_frames_from_clients() {
        let (service, handle) = tiny_server();

        // Client 1 dies mid-length-prefix.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream.write_all(&[0u8, 0u8]).unwrap();
        }
        // Client 2 promises 100 bytes and dies after 5.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream.write_all(&100u32.to_be_bytes()).unwrap();
            stream.write_all(b"short").unwrap();
        }

        // The server is still healthy: a fresh client completes a full
        // round trip.
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(client.ping().unwrap());
        drop(client);
        handle.stop();
        service.shutdown();
    }

    #[test]
    fn version_mismatch_is_typed() {
        let (service, handle) = tiny_server();
        let err = Client::connect_with(
            handle.addr(),
            PROTOCOL_VERSION + 1,
            2,
            Duration::from_millis(1),
        )
        .unwrap_err();
        match err {
            ClientError::VersionMismatch { client, server } => {
                assert_eq!(client, PROTOCOL_VERSION + 1);
                assert_eq!(server, PROTOCOL_VERSION);
            }
            other => panic!("expected a version mismatch, got {other}"),
        }
        handle.stop();
        service.shutdown();
    }

    #[test]
    fn shard_status_names_the_slot_and_version() {
        let mut cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServiceConfig::default()
        };
        cfg.join_config.cpu.threads = 2;
        let service = JoinService::start(cfg);
        let handle = serve_shard(Arc::clone(&service), "127.0.0.1:0", Some(3)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let status = client.shard_status().unwrap();
        assert_eq!(status.get("shard").and_then(Json::as_u64), Some(3));
        assert_eq!(
            status.get("protocol_version").and_then(Json::as_u64),
            Some(u64::from(PROTOCOL_VERSION))
        );
        assert!(status
            .get("status")
            .and_then(|s| s.get("governor"))
            .is_some());
        drop(client);
        handle.stop();
        service.shutdown();
    }

    #[test]
    fn client_reconnects_after_a_dropped_connection() {
        // A flaky server: the first connection is read then dropped
        // without a reply (the client sees EOF mid-exchange); the second
        // serves pings properly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut dropped_one = false;
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                if !dropped_one {
                    dropped_one = true;
                    let _ = read_frame(&mut stream);
                    continue; // drop without replying
                }
                while let Ok(_frame) = read_frame(&mut stream) {
                    let reply = Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        (
                            "protocol_version",
                            Json::from_u64(u64::from(PROTOCOL_VERSION)),
                        ),
                    ]);
                    if write_frame(&mut stream, &reply).is_err() {
                        break;
                    }
                }
                break;
            }
        });

        // connect() performs the hello, which transparently survives the
        // dropped first connection.
        let mut client =
            Client::connect_with(addr, PROTOCOL_VERSION, 4, Duration::from_millis(1)).unwrap();
        assert!(client.ping().unwrap());
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn exhausted_retries_surface_connection_lost() {
        // Bind, learn the port, drop the listener: every dial is refused.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let err =
            Client::connect_with(addr, PROTOCOL_VERSION, 3, Duration::from_millis(1)).unwrap_err();
        match err {
            ClientError::ConnectionLost { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(!last.is_empty());
            }
            other => panic!("expected connection loss, got {other}"),
        }
    }
}
