//! Length-prefixed TCP protocol: each frame is a `u32` big-endian byte
//! length followed by that many bytes of UTF-8 JSON.
//!
//! Ops (the `"op"` member of a request frame):
//!
//! * `"join"` (default) — a [`JoinRequest`]; answered with one
//!   [`JoinResponse`] frame once the join resolves.
//! * `"metrics"` — answered with the service snapshot (metrics, governor,
//!   plan cache).
//! * `"ping"` — answered with `{"ok": true}`; liveness probe.
//!
//! Malformed frames get a `failed` response naming the parse error (id 0,
//! since no request was admitted) instead of a dropped connection; only a
//! broken transport closes the stream.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use skewjoin::common::json::Json;

use crate::request::{JoinRequest, JoinResponse, Outcome};
use crate::service::JoinService;

/// Frames larger than this are refused — a corrupt length prefix must not
/// trigger a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let body = json.to_string_pretty();
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. A clean EOF before the length
/// prefix surfaces as `ErrorKind::UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Json> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))?;
    Json::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))
}

/// A running TCP front end over a [`JoinService`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `"127.0.0.1:0"` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. Existing
    /// connections drain on their own (they are client-driven); the
    /// underlying service keeps running until its own `shutdown`.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `service` over it until
/// [`ServerHandle::stop`].
pub fn serve(service: Arc<JoinService>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("skewjoind-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let service = Arc::clone(&service);
                let _ = std::thread::Builder::new()
                    .name("skewjoind-conn".into())
                    .spawn(move || handle_connection(&service, stream));
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(service: &JoinService, mut stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown-peer".into());
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            // Clean close or broken transport: nothing left to answer.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Describe the malformed frame, then resynchronization is
                // hopeless (the stream offset is lost), so close.
                let _ = write_frame(&mut stream, &protocol_error(&e.to_string()));
                return;
            }
            Err(_) => return,
        };
        let op = frame.get("op").and_then(Json::as_str).unwrap_or("join");
        let reply = match op {
            "ping" => Json::obj(vec![("ok", Json::Bool(true))]),
            "metrics" => service.snapshot(),
            "join" => match JoinRequest::from_json(&frame, &peer) {
                Ok(request) => service.submit(request).wait().to_json(),
                Err(msg) => protocol_error(&msg),
            },
            other => protocol_error(&format!("unknown op {other:?}")),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// A `failed` response with id 0: the frame never became an admitted
/// request, so no service accounting applies.
fn protocol_error(msg: &str) -> Json {
    JoinResponse {
        id: 0,
        outcome: Outcome::Failed {
            error: format!("protocol error: {msg}"),
        },
    }
    .to_json()
}

/// A blocking client for the frame protocol.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Submits a join and blocks for its response.
    pub fn join(&mut self, request: &JoinRequest) -> io::Result<JoinResponse> {
        write_frame(&mut self.stream, &request.to_json())?;
        let reply = read_frame(&mut self.stream)?;
        JoinResponse::from_json(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Fetches the service snapshot.
    pub fn metrics(&mut self) -> io::Result<Json> {
        write_frame(
            &mut self.stream,
            &Json::obj(vec![("op", Json::str("metrics"))]),
        )?;
        read_frame(&mut self.stream)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<bool> {
        write_frame(
            &mut self.stream,
            &Json::obj(vec![("op", Json::str("ping"))]),
        )?;
        let reply = read_frame(&mut self.stream)?;
        Ok(reply.get("ok").and_then(Json::as_bool).unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AlgoChoice;
    use crate::service::ServiceConfig;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let json = Json::obj(vec![("op", Json::str("ping")), ("n", Json::from_u64(7))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &json).unwrap();
        assert_eq!(
            u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize,
            buf.len() - 4
        );
        let back = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back.get("n").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_eof_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    fn tiny_server() -> (Arc<JoinService>, ServerHandle) {
        let mut cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServiceConfig::default()
        };
        cfg.join_config.cpu.threads = 2;
        let service = JoinService::start(cfg);
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        (service, handle)
    }

    #[test]
    fn tcp_round_trip_join_metrics_ping() {
        let (service, handle) = tiny_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(client.ping().unwrap());

        let req = JoinRequest::generate("wire", AlgoChoice::parse("csh").unwrap(), 2048, 0.9, 3);
        let resp = client.join(&req).unwrap();
        match resp.outcome {
            Outcome::Completed(summary) => assert!(summary.result_count > 0),
            other => panic!("expected completion over TCP, got {other:?}"),
        }

        let snapshot = client.metrics().unwrap();
        assert!(snapshot.get("governor").is_some());
        drop(client);
        handle.stop();
        service.shutdown();
    }

    #[test]
    fn malformed_wire_request_gets_a_typed_error_frame() {
        let (service, handle) = tiny_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Json::obj(vec![
                ("op", Json::str("join")),
                ("algo", Json::str("bogus")),
            ]),
        )
        .unwrap();
        let reply = read_frame(&mut stream).unwrap();
        let resp = JoinResponse::from_json(&reply).unwrap();
        match resp.outcome {
            Outcome::Failed { error } => assert!(error.contains("bogus")),
            other => panic!("expected a protocol error, got {other:?}"),
        }
        drop(stream);
        handle.stop();
        service.shutdown();
    }
}
