//! `skewjoind` — the standalone join service daemon.
//!
//! Binds a TCP listener and serves length-prefixed JSON join requests
//! against a shared worker pool with admission control, a memory governor,
//! and a plan cache (see the `skewjoin-service` crate docs).
//!
//! ```text
//! cargo run -p skewjoin-service --bin skewjoind -- \
//!     --listen 127.0.0.1:7733 --workers 4 --budget-mb 512
//! ```
//!
//! Probe it with the `join_cli` example:
//!
//! ```text
//! cargo run -p skewjoin-service --example join_cli -- \
//!     --connect 127.0.0.1:7733 --algo auto --tuples 65536 --zipf 0.9
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use skewjoin_service::{protocol, JoinService, ServiceConfig};

struct Args {
    listen: String,
    shard: Option<u32>,
    cfg: ServiceConfig,
}

const USAGE: &str = "usage: skewjoind [--listen ADDR] [--workers N] [--queue N] \
[--budget-mb N] [--cache N] [--shard N]
  --listen ADDR   TCP address to bind (default 127.0.0.1:7733; use port 0 for ephemeral)
  --workers N     worker threads executing joins (default 4)
  --queue N       admission queue capacity before load shedding (default 64)
  --budget-mb N   memory governor budget in MiB (default 1024)
  --cache N       plan cache capacity in entries (default 64)
  --shard N       cluster shard slot this daemon serves (reported in ping/shard_status)";

fn parse_args() -> Result<Args, String> {
    let mut listen = "127.0.0.1:7733".to_string();
    let mut shard = None;
    let mut cfg = ServiceConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let bad = |e| format!("bad value {value:?} for {flag}: {e}");
        match flag.as_str() {
            "--listen" => listen = value.clone(),
            "--workers" => cfg.workers = value.parse().map_err(bad)?,
            "--queue" => cfg.queue_capacity = value.parse().map_err(bad)?,
            "--budget-mb" => {
                cfg.memory_budget = value.parse::<u64>().map_err(bad)? * (1 << 20);
            }
            "--cache" => cfg.plan_cache_capacity = value.parse().map_err(bad)?,
            "--shard" => shard = Some(value.parse().map_err(bad)?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(Args { listen, shard, cfg })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("skewjoind: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let workers = args.cfg.workers;
    let queue = args.cfg.queue_capacity;
    let budget = args.cfg.memory_budget;
    let service = JoinService::start(args.cfg);
    let server = match protocol::serve_shard(Arc::clone(&service), args.listen.as_str(), args.shard)
    {
        Ok(server) => server,
        Err(e) => {
            eprintln!("skewjoind: cannot listen on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let shard_tag = args
        .shard
        .map(|s| format!(", shard {s}"))
        .unwrap_or_default();
    println!(
        "skewjoind listening on {} ({} workers, queue {}, budget {} MiB{})",
        server.addr(),
        workers,
        queue,
        budget >> 20,
        shard_tag,
    );

    // Serve until killed. The accept loop and workers run on their own
    // threads; parking the main thread keeps the process alive without
    // spinning.
    loop {
        std::thread::park();
    }
}
