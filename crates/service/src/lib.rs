//! # skewjoin-service
//!
//! `skewjoind`: a concurrent join service over the `skewjoin` engine, built
//! from three mechanisms the paper's skew story maps onto directly:
//!
//! * **Admission control + backpressure** ([`queue`], [`service`]) — a
//!   bounded three-band priority queue with per-client round-robin lanes.
//!   A full queue sheds load with a typed `Rejected { retry_after }`
//!   instead of letting latency collapse, and a flooding client only ever
//!   delays itself — the serving-layer analogue of routing hot keys
//!   through their own path.
//! * **Memory governor** ([`governor`]) — every admitted join reserves its
//!   planner-estimated footprint against a global byte budget before
//!   executing. Over-budget requests degrade down a ladder (narrower radix
//!   bits, then GPU → CPU via the engine's existing fallback) or queue
//!   until bytes free up; infeasible-even-degraded requests are rejected
//!   at admission.
//! * **Plan cache** ([`skewjoin::planner::PlanCache`], surfaced in
//!   [`service`]) — `Auto` requests reuse planner decisions keyed by
//!   (relation fingerprint, size bucket, skew bucket) with hit/miss
//!   counters in the service snapshot.
//!
//! Clients talk to the service in-process via [`JoinService::submit`]
//! (returning a [`service::Ticket`]) or over a length-prefixed TCP JSON
//! protocol ([`protocol`]); the `skewjoind` binary serves the latter.
//!
//! Every submission resolves to exactly one typed [`Outcome`] — completed,
//! rejected, cancelled, or failed — and the metrics reconcile exactly:
//! `submitted = admitted + rejected` and
//! `admitted = completed + cancelled + failed`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod governor;
pub mod protocol;
pub mod queue;
pub mod request;
pub mod service;

pub use governor::{MemoryGovernor, Reservation, ReserveError};
pub use protocol::{serve, serve_shard, Client, ClientError, ServerHandle, PROTOCOL_VERSION};
pub use queue::{FairQueue, PushError};
pub use request::{
    AlgoChoice, JoinRequest, JoinResponse, JoinSummary, Outcome, Priority, RequestId,
    RequestPayload,
};
pub use service::{JoinService, ServiceConfig, Ticket};
