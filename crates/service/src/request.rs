//! Request/response types for the join service, with the JSON codecs the
//! wire protocol uses.
//!
//! A [`JoinRequest`] either carries its relations inline (in-process
//! clients hand over `Arc`s; remote clients ship key/payload arrays) or
//! asks the service to generate a paper workload on the worker — the cheap
//! way to drive load tests over TCP without streaming megabytes of tuples.

use std::sync::Arc;
use std::time::Duration;

use skewjoin::common::json::Json;
use skewjoin::common::{Key, Relation, Trace, Tuple};
use skewjoin::planner::TargetDevice;
use skewjoin::{Algorithm, CpuAlgorithm, GpuAlgorithm, JoinConfig, ShardPartition};

/// Service-assigned request identifier, unique within one service instance.
pub type RequestId = u64;

/// Admission priority band. Higher bands always dequeue first; within a
/// band, clients are served round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive: dequeued before everything else.
    High,
    /// The default band.
    Normal,
    /// Bulk/batch work: runs only when the other bands are empty.
    Low,
}

impl Priority {
    /// All bands, in dequeue order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Band index in dequeue order (0 = first).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// How the service picks the algorithm for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Run exactly this algorithm.
    Fixed(Algorithm),
    /// Let the planner (through the service's plan cache) choose for the
    /// given target device.
    Auto(TargetDevice),
}

impl AlgoChoice {
    /// Parses the CLI/wire spelling: an algorithm name (`cbase`, `npj`,
    /// `csh`, `gbase`, `gsh`) or `auto` / `auto-gpu`.
    pub fn parse(s: &str) -> Option<AlgoChoice> {
        match s.to_ascii_lowercase().as_str() {
            "cbase" => Some(AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Cbase))),
            "npj" | "cbase-npj" => Some(AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::CbaseNpj))),
            "csh" => Some(AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Csh))),
            "gbase" => Some(AlgoChoice::Fixed(Algorithm::Gpu(GpuAlgorithm::Gbase))),
            "gsh" => Some(AlgoChoice::Fixed(Algorithm::Gpu(GpuAlgorithm::Gsh))),
            "auto" | "plan" => Some(AlgoChoice::Auto(TargetDevice::Cpu)),
            "auto-gpu" | "plan-gpu" => Some(AlgoChoice::Auto(TargetDevice::Gpu)),
            _ => None,
        }
    }

    /// Wire name (inverse of [`AlgoChoice::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Cbase)) => "cbase",
            AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::CbaseNpj)) => "cbase-npj",
            AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Csh)) => "csh",
            AlgoChoice::Fixed(Algorithm::Gpu(GpuAlgorithm::Gbase)) => "gbase",
            AlgoChoice::Fixed(Algorithm::Gpu(GpuAlgorithm::Gsh)) => "gsh",
            AlgoChoice::Auto(TargetDevice::Cpu) => "auto",
            AlgoChoice::Auto(TargetDevice::Gpu) => "auto-gpu",
        }
    }
}

/// The input relations of a request.
#[derive(Debug, Clone)]
pub enum RequestPayload {
    /// Caller-provided relations. In-process submissions share them by
    /// `Arc`; over the wire they are shipped as key/payload arrays.
    Inline {
        /// Build side.
        r: Arc<Relation>,
        /// Probe side.
        s: Arc<Relation>,
    },
    /// The worker generates `WorkloadSpec::paper(tuples, zipf, seed)`.
    Generate {
        /// Tuples per relation.
        tuples: usize,
        /// Zipf skew factor.
        zipf: f64,
        /// Generator seed.
        seed: u64,
    },
}

impl RequestPayload {
    /// Build-side cardinality (used for admission-time cost estimates).
    pub fn r_tuples(&self) -> usize {
        match self {
            RequestPayload::Inline { r, .. } => r.len(),
            RequestPayload::Generate { tuples, .. } => *tuples,
        }
    }

    /// Probe-side cardinality.
    pub fn s_tuples(&self) -> usize {
        match self {
            RequestPayload::Inline { s, .. } => s.len(),
            RequestPayload::Generate { tuples, .. } => *tuples,
        }
    }
}

/// One join request, as submitted by a client.
#[derive(Debug, Clone)]
pub struct JoinRequest {
    /// Client identity for fairness accounting (free-form; remote clients
    /// default to their socket address).
    pub client: String,
    /// Algorithm choice (fixed or planner-driven).
    pub algo: AlgoChoice,
    /// Admission priority band.
    pub priority: Priority,
    /// Deadline measured from admission; the service cancels the request
    /// at the next phase boundary after it expires.
    pub deadline: Option<Duration>,
    /// The input relations.
    pub payload: RequestPayload,
    /// Execution configuration override. `None` uses the service default.
    /// Not carried over the wire (remote requests always run the service
    /// config).
    pub config: Option<JoinConfig>,
    /// For sharded (cluster) execution: the slice of the key space this
    /// node owns plus the hot keys exempt from ownership. Tuples outside
    /// the slice are rejected as coordinator misrouting. A restricted
    /// request always reports per-key counts and its trace.
    pub shard: Option<ShardPartition>,
    /// Ask for per-key result counts (and the execution trace) in the
    /// summary even without a shard restriction — what the distributed
    /// diffcheck uses to fetch single-node ground truth over the wire.
    pub want_key_counts: bool,
}

impl JoinRequest {
    /// A `Generate` request with default priority and no deadline.
    pub fn generate(client: &str, algo: AlgoChoice, tuples: usize, zipf: f64, seed: u64) -> Self {
        Self {
            client: client.to_string(),
            algo,
            priority: Priority::Normal,
            deadline: None,
            payload: RequestPayload::Generate { tuples, zipf, seed },
            config: None,
            shard: None,
            want_key_counts: false,
        }
    }

    /// An `Inline` request with default priority and no deadline.
    pub fn inline(client: &str, algo: AlgoChoice, r: Arc<Relation>, s: Arc<Relation>) -> Self {
        Self {
            client: client.to_string(),
            algo,
            priority: Priority::Normal,
            deadline: None,
            payload: RequestPayload::Inline { r, s },
            config: None,
            shard: None,
            want_key_counts: false,
        }
    }

    /// Serializes for the wire (the `config` override does not travel).
    pub fn to_json(&self) -> Json {
        self.wire_json("join")
    }

    /// [`JoinRequest::to_json`] under an explicit op name (`"join"` or
    /// `"shard_join"`).
    pub fn wire_json(&self, op: &str) -> Json {
        let payload = match &self.payload {
            RequestPayload::Generate { tuples, zipf, seed } => Json::obj(vec![(
                "generate",
                Json::obj(vec![
                    ("tuples", Json::from_u64(*tuples as u64)),
                    ("zipf", Json::num(*zipf)),
                    ("seed", Json::from_u64(*seed)),
                ]),
            )]),
            RequestPayload::Inline { r, s } => Json::obj(vec![(
                "inline",
                Json::obj(vec![("r", relation_to_json(r)), ("s", relation_to_json(s))]),
            )]),
        };
        let mut fields = vec![
            ("op", Json::str(op)),
            ("client", Json::str(&self.client)),
            ("algo", Json::str(self.algo.name())),
            ("priority", Json::str(self.priority.name())),
            ("payload", payload),
        ];
        if let Some(d) = self.deadline {
            fields.push(("deadline_ms", Json::from_u64(d.as_millis() as u64)));
        }
        if let Some(shard) = &self.shard {
            fields.push((
                "shard",
                Json::obj(vec![
                    ("slot", Json::from_u64(shard.slot as u64)),
                    ("shards", Json::from_u64(shard.shards as u64)),
                    (
                        "hot_keys",
                        Json::Arr(
                            shard
                                .hot_keys
                                .iter()
                                .map(|&k| Json::from_u64(u64::from(k)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if self.want_key_counts {
            fields.push(("want_key_counts", Json::Bool(true)));
        }
        Json::obj(fields)
    }

    /// Parses a wire request. Returns a human-readable error for malformed
    /// frames so the server can reply instead of dropping the connection.
    pub fn from_json(json: &Json, default_client: &str) -> Result<JoinRequest, String> {
        let algo_name = json
            .get("algo")
            .and_then(Json::as_str)
            .ok_or("missing \"algo\"")?;
        let algo = AlgoChoice::parse(algo_name)
            .ok_or_else(|| format!("unknown algorithm {algo_name:?}"))?;
        let priority = match json.get("priority").and_then(Json::as_str) {
            None => Priority::Normal,
            Some(p) => Priority::parse(p).ok_or_else(|| format!("unknown priority {p:?}"))?,
        };
        let client = json
            .get("client")
            .and_then(Json::as_str)
            .unwrap_or(default_client)
            .to_string();
        let deadline = json
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis);
        let payload = json.get("payload").ok_or("missing \"payload\"")?;
        let payload = if let Some(generate) = payload.get("generate") {
            RequestPayload::Generate {
                tuples: generate
                    .get("tuples")
                    .and_then(Json::as_u64)
                    .ok_or("generate payload needs \"tuples\"")? as usize,
                zipf: generate
                    .get("zipf")
                    .and_then(Json::as_f64)
                    .ok_or("generate payload needs \"zipf\"")?,
                seed: generate.get("seed").and_then(Json::as_u64).unwrap_or(42),
            }
        } else if let Some(inline) = payload.get("inline") {
            RequestPayload::Inline {
                r: Arc::new(relation_from_json(
                    inline.get("r").ok_or("inline payload needs \"r\"")?,
                )?),
                s: Arc::new(relation_from_json(
                    inline.get("s").ok_or("inline payload needs \"s\"")?,
                )?),
            }
        } else {
            return Err("payload must be \"generate\" or \"inline\"".into());
        };
        let shard = match json.get("shard") {
            None => None,
            Some(shard) => {
                let slot = shard
                    .get("slot")
                    .and_then(Json::as_u64)
                    .ok_or("shard needs \"slot\"")? as usize;
                let shards = shard
                    .get("shards")
                    .and_then(Json::as_u64)
                    .ok_or("shard needs \"shards\"")? as usize;
                let mut hot_keys = Vec::new();
                if let Some(keys) = shard.get("hot_keys").and_then(Json::as_array) {
                    for k in keys {
                        let k = k.as_u64().ok_or("shard hot key must be an integer")?;
                        hot_keys.push(Key::try_from(k).map_err(|_| "shard hot key exceeds u32")?);
                    }
                }
                Some(ShardPartition {
                    slot,
                    shards,
                    hot_keys,
                })
            }
        };
        let want_key_counts = json
            .get("want_key_counts")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Ok(JoinRequest {
            client,
            algo,
            priority,
            deadline,
            payload,
            config: None,
            shard,
            want_key_counts,
        })
    }
}

fn relation_to_json(rel: &Relation) -> Json {
    Json::Arr(
        rel.iter()
            .map(|t| {
                Json::Arr(vec![
                    Json::from_u64(u64::from(t.key)),
                    Json::from_u64(u64::from(t.payload)),
                ])
            })
            .collect(),
    )
}

fn relation_from_json(json: &Json) -> Result<Relation, String> {
    let rows = json.as_array().ok_or("relation must be an array")?;
    let mut rel = Relation::with_capacity(rows.len());
    for row in rows {
        let pair = row
            .as_array()
            .ok_or("tuple must be a [key, payload] pair")?;
        if pair.len() != 2 {
            return Err("tuple must be a [key, payload] pair".into());
        }
        let key = pair[0].as_u64().ok_or("tuple key must be an integer")?;
        let payload = pair[1].as_u64().ok_or("tuple payload must be an integer")?;
        rel.push(Tuple::new(
            u32::try_from(key).map_err(|_| "tuple key exceeds u32")?,
            u32::try_from(payload).map_err(|_| "tuple payload exceeds u32")?,
        ));
    }
    Ok(rel)
}

/// What a completed join reports back — the stats trimmed to what a serving
/// client acts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSummary {
    /// Algorithm that actually ran (after planning and any fallback).
    pub algorithm: String,
    /// Result tuples produced.
    pub result_count: u64,
    /// Order-independent checksum over the results.
    pub checksum: u64,
    /// Execution time (wall-clock for CPU, simulated for GPU) in
    /// nanoseconds.
    pub exec_nanos: u64,
    /// Time spent queued before a worker picked the request up, in
    /// nanoseconds.
    pub queue_nanos: u64,
    /// Degradation-ladder rungs taken, service-level decisions first (e.g.
    /// a governor-forced device clamp), then the executor's own records.
    pub degradations: Vec<String>,
    /// Whether the planner decision came from the plan cache.
    pub plan_cache_hit: bool,
    /// Per-key result counts, sorted by key — present when the request
    /// was sharded or asked for them (`want_key_counts`). The cluster
    /// coordinator merges these for the distributed diffcheck.
    pub key_counts: Option<Vec<(Key, u64)>>,
    /// The execution trace, carried alongside `key_counts` so a
    /// coordinator can merge per-shard phase counters into a
    /// cluster-level trace.
    pub trace: Option<Trace>,
}

/// Terminal outcome of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The join ran; results are summarized.
    Completed(JoinSummary),
    /// Load shedding: the request was never admitted. Retry no sooner than
    /// `retry_after`.
    Rejected {
        /// Why admission refused it.
        reason: String,
        /// Backoff hint, scaled to current queue depth.
        retry_after: Duration,
    },
    /// Cancelled (explicitly, by deadline, or by shutdown) before or during
    /// execution; `phase` is the boundary that observed it.
    Cancelled {
        /// The phase boundary that observed the cancellation.
        phase: String,
    },
    /// Execution failed with a typed join error.
    Failed {
        /// Display form of the underlying [`skewjoin::common::JoinError`].
        error: String,
    },
}

impl Outcome {
    /// Wire tag for this outcome.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Completed(_) => "completed",
            Outcome::Rejected { .. } => "rejected",
            Outcome::Cancelled { .. } => "cancelled",
            Outcome::Failed { .. } => "failed",
        }
    }
}

/// The service's reply to one [`JoinRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinResponse {
    /// Service-assigned id of the request this answers.
    pub id: RequestId,
    /// Terminal outcome.
    pub outcome: Outcome,
}

impl JoinResponse {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::from_u64(self.id)),
            ("outcome", Json::str(self.outcome.tag())),
        ];
        match &self.outcome {
            Outcome::Completed(s) => {
                let mut summary = vec![
                    ("algorithm", Json::str(&s.algorithm)),
                    ("result_count", Json::from_u64(s.result_count)),
                    ("checksum", Json::str(format!("{:#018x}", s.checksum))),
                    ("exec_nanos", Json::from_u64(s.exec_nanos)),
                    ("queue_nanos", Json::from_u64(s.queue_nanos)),
                    (
                        "degradations",
                        Json::Arr(s.degradations.iter().map(Json::str).collect()),
                    ),
                    ("plan_cache_hit", Json::Bool(s.plan_cache_hit)),
                ];
                if let Some(counts) = &s.key_counts {
                    summary.push((
                        "key_counts",
                        Json::Arr(
                            counts
                                .iter()
                                .map(|&(key, count)| {
                                    Json::Arr(vec![
                                        Json::from_u64(u64::from(key)),
                                        Json::from_u64(count),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                if let Some(trace) = &s.trace {
                    summary.push(("trace", trace.to_json()));
                }
                fields.push(("summary", Json::obj(summary)));
            }
            Outcome::Rejected {
                reason,
                retry_after,
            } => {
                fields.push(("reason", Json::str(reason)));
                fields.push((
                    "retry_after_ms",
                    Json::from_u64(retry_after.as_millis() as u64),
                ));
            }
            Outcome::Cancelled { phase } => fields.push(("phase", Json::str(phase))),
            Outcome::Failed { error } => fields.push(("error", Json::str(error))),
        }
        Json::obj(fields)
    }

    /// Parses a wire response.
    pub fn from_json(json: &Json) -> Result<JoinResponse, String> {
        let id = json
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("missing \"id\"")?;
        let tag = json
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or("missing \"outcome\"")?;
        let outcome = match tag {
            "completed" => {
                let s = json.get("summary").ok_or("completed without summary")?;
                Outcome::Completed(JoinSummary {
                    algorithm: s
                        .get("algorithm")
                        .and_then(Json::as_str)
                        .ok_or("summary needs algorithm")?
                        .to_string(),
                    result_count: s
                        .get("result_count")
                        .and_then(Json::as_u64)
                        .ok_or("summary needs result_count")?,
                    checksum: s
                        .get("checksum")
                        .and_then(Json::as_str)
                        .and_then(|hex| hex.strip_prefix("0x"))
                        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                        .ok_or("summary needs a hex checksum")?,
                    exec_nanos: s.get("exec_nanos").and_then(Json::as_u64).unwrap_or(0),
                    queue_nanos: s.get("queue_nanos").and_then(Json::as_u64).unwrap_or(0),
                    degradations: s
                        .get("degradations")
                        .and_then(Json::as_array)
                        .map(|arr| {
                            arr.iter()
                                .filter_map(Json::as_str)
                                .map(str::to_string)
                                .collect()
                        })
                        .unwrap_or_default(),
                    plan_cache_hit: s
                        .get("plan_cache_hit")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    key_counts: match s.get("key_counts").and_then(Json::as_array) {
                        None => None,
                        Some(rows) => {
                            let mut counts = Vec::with_capacity(rows.len());
                            for row in rows {
                                let pair = row
                                    .as_array()
                                    .filter(|p| p.len() == 2)
                                    .ok_or("key_counts entries must be [key, count] pairs")?;
                                let key = pair[0]
                                    .as_u64()
                                    .and_then(|k| Key::try_from(k).ok())
                                    .ok_or("key_counts key must fit u32")?;
                                let count =
                                    pair[1].as_u64().ok_or("key_counts count must be a u64")?;
                                counts.push((key, count));
                            }
                            Some(counts)
                        }
                    },
                    trace: match s.get("trace") {
                        None => None,
                        Some(t) => {
                            Some(Trace::from_json(t).ok_or("summary trace failed to parse")?)
                        }
                    },
                })
            }
            "rejected" => Outcome::Rejected {
                reason: json
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("rejected")
                    .to_string(),
                retry_after: Duration::from_millis(
                    json.get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                ),
            },
            "cancelled" => Outcome::Cancelled {
                phase: json
                    .get("phase")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            },
            "failed" => Outcome::Failed {
                error: json
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            },
            other => return Err(format!("unknown outcome tag {other:?}")),
        };
        Ok(JoinResponse { id, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_choice_round_trips() {
        for name in [
            "cbase",
            "cbase-npj",
            "csh",
            "gbase",
            "gsh",
            "auto",
            "auto-gpu",
        ] {
            let a = AlgoChoice::parse(name).unwrap();
            assert_eq!(a.name(), name);
        }
        assert_eq!(AlgoChoice::parse("npj"), AlgoChoice::parse("cbase-npj"));
        assert!(AlgoChoice::parse("quantum").is_none());
    }

    #[test]
    fn generate_request_round_trips() {
        let mut req =
            JoinRequest::generate("tester", AlgoChoice::parse("csh").unwrap(), 4096, 0.9, 7);
        req.priority = Priority::High;
        req.deadline = Some(Duration::from_millis(250));
        let back = JoinRequest::from_json(&req.to_json(), "fallback").unwrap();
        assert_eq!(back.client, "tester");
        assert_eq!(back.algo, req.algo);
        assert_eq!(back.priority, Priority::High);
        assert_eq!(back.deadline, Some(Duration::from_millis(250)));
        match back.payload {
            RequestPayload::Generate { tuples, zipf, seed } => {
                assert_eq!((tuples, seed), (4096, 7));
                assert!((zipf - 0.9).abs() < 1e-9);
            }
            other => panic!("expected generate payload, got {other:?}"),
        }
    }

    #[test]
    fn inline_request_round_trips() {
        let r = Arc::new(Relation::from_keys(&[1, 2, 3]));
        let s = Arc::new(Relation::from_keys(&[2, 3, 3]));
        let req = JoinRequest::inline("c", AlgoChoice::parse("cbase").unwrap(), r.clone(), s);
        let back = JoinRequest::from_json(&req.to_json(), "c").unwrap();
        match back.payload {
            RequestPayload::Inline { r: br, s: bs } => {
                assert_eq!(br.tuples(), r.tuples());
                assert_eq!(bs.len(), 3);
            }
            other => panic!("expected inline payload, got {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            JoinResponse {
                id: 9,
                outcome: Outcome::Completed(JoinSummary {
                    algorithm: "CSH".into(),
                    result_count: 123,
                    checksum: 0xDEAD_BEEF_0000_0001,
                    exec_nanos: 42,
                    queue_nanos: 7,
                    degradations: vec!["GSH→CSH: oom".into()],
                    plan_cache_hit: true,
                    key_counts: None,
                    trace: None,
                }),
            },
            JoinResponse {
                id: 13,
                outcome: Outcome::Completed(JoinSummary {
                    algorithm: "Cbase".into(),
                    result_count: 6,
                    checksum: 0x0000_0000_0000_00FF,
                    exec_nanos: 1,
                    queue_nanos: 2,
                    degradations: vec![],
                    plan_cache_hit: false,
                    key_counts: Some(vec![(1, 2), (7, 4)]),
                    trace: Some({
                        let mut t = Trace::new();
                        t.set("shard", "slot", 1);
                        t.set("build", "tuples", 99);
                        t
                    }),
                }),
            },
            JoinResponse {
                id: 10,
                outcome: Outcome::Rejected {
                    reason: "queue full".into(),
                    retry_after: Duration::from_millis(15),
                },
            },
            JoinResponse {
                id: 11,
                outcome: Outcome::Cancelled {
                    phase: "partition".into(),
                },
            },
            JoinResponse {
                id: 12,
                outcome: Outcome::Failed {
                    error: "backend unavailable".into(),
                },
            },
        ];
        for resp in cases {
            let text = resp.to_json().to_string_pretty();
            let back = JoinResponse::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn sharded_request_round_trips() {
        let mut req =
            JoinRequest::generate("coord", AlgoChoice::parse("csh").unwrap(), 1024, 1.2, 3);
        req.shard = Some(ShardPartition {
            slot: 2,
            shards: 4,
            hot_keys: vec![7, 42],
        });
        req.want_key_counts = true;
        let wire = req.wire_json("shard_join");
        assert_eq!(wire.get("op").and_then(Json::as_str), Some("shard_join"));
        let back = JoinRequest::from_json(&wire, "coord").unwrap();
        assert_eq!(back.shard, req.shard);
        assert!(back.want_key_counts);
        // Requests without shard fields stay unrestricted.
        let plain = JoinRequest::generate("c", AlgoChoice::parse("csh").unwrap(), 64, 0.0, 1);
        let back = JoinRequest::from_json(&plain.to_json(), "c").unwrap();
        assert!(back.shard.is_none());
        assert!(!back.want_key_counts);
    }

    #[test]
    fn malformed_requests_are_described_not_dropped() {
        let bad = Json::parse(r#"{"algo":"csh"}"#).unwrap();
        let err = JoinRequest::from_json(&bad, "x").unwrap_err();
        assert!(err.contains("payload"));
        let bad = Json::parse(r#"{"algo":"nope","payload":{"generate":{"tuples":1,"zipf":0.0}}}"#)
            .unwrap();
        assert!(JoinRequest::from_json(&bad, "x")
            .unwrap_err()
            .contains("nope"));
    }
}
