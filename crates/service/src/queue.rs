//! Bounded three-band priority queue with per-client round-robin fairness.
//!
//! Admission control's data structure: [`push`](FairQueue::push) fails fast
//! with [`QueueFull`] when the global bound is hit (the service turns that
//! into a typed `Rejected { retry_after }`), and
//! [`pop`](FairQueue::pop) blocks workers until work or shutdown.
//!
//! Fairness: each band keeps one FIFO lane per client and rotates among
//! them, so a client that floods the queue only ever delays itself — the
//! paper's skew pathology, transplanted to the serving layer, is exactly
//! "one hot client starves the rest", and the rotation is the analogue of
//! routing hot keys through their own code path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::request::Priority;

/// Push failure: the queue is at capacity (load shedding) or shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The global bound is reached; shed load.
    QueueFull {
        /// Entries currently queued (== capacity).
        depth: usize,
    },
    /// [`FairQueue::close`] was called; no further work is accepted.
    Closed,
}

/// One band: per-client FIFO lanes, rotated round-robin. Linear client
/// scans are fine — the lane count is the number of *distinct clients in
/// flight*, not the queue depth.
struct Band<T> {
    lanes: VecDeque<(String, VecDeque<T>)>,
}

impl<T> Band<T> {
    fn new() -> Self {
        Self {
            lanes: VecDeque::new(),
        }
    }

    fn push(&mut self, client: &str, item: T) {
        if let Some((_, lane)) = self.lanes.iter_mut().find(|(c, _)| c == client) {
            lane.push_back(item);
        } else {
            let mut lane = VecDeque::new();
            lane.push_back(item);
            self.lanes.push_back((client.to_string(), lane));
        }
    }

    /// Pops from the front lane, then rotates it to the back (or drops it
    /// when empty) so the next pop serves the next client.
    fn pop(&mut self) -> Option<T> {
        let (client, mut lane) = self.lanes.pop_front()?;
        let item = lane.pop_front();
        if !lane.is_empty() {
            self.lanes.push_back((client, lane));
        }
        item
    }
}

struct Inner<T> {
    bands: [Band<T>; 3],
    len: usize,
    closed: bool,
}

/// The bounded fair priority queue. All methods are `&self`; share it in an
/// `Arc` between submitters and workers.
pub struct FairQueue<T> {
    inner: Mutex<Inner<T>>,
    readable: Condvar,
    capacity: usize,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `capacity` entries (min 1) across all
    /// bands.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                bands: [Band::new(), Band::new(), Band::new()],
                len: 0,
                closed: false,
            }),
            readable: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; fails fast when full or closed.
    pub fn push(&self, priority: Priority, client: &str, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len >= self.capacity {
            return Err(PushError::QueueFull { depth: inner.len });
        }
        inner.bands[priority.index()].push(client, item);
        inner.len += 1;
        drop(inner);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocks until an entry is available (highest band first, clients
    /// rotated within a band) or the queue is closed *and* drained, which
    /// returns `None` — the workers' exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = Self::pop_locked(&mut inner) {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .readable
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Like [`pop`](Self::pop) with a bound on the wait; `None` may then
    /// also mean "timed out while open" — callers distinguish via
    /// [`is_closed`](Self::is_closed).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.lock();
        if let Some(item) = Self::pop_locked(&mut inner) {
            return Some(item);
        }
        if inner.closed {
            return None;
        }
        let (mut inner, _) = self
            .readable
            .wait_timeout(inner, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::pop_locked(&mut inner)
    }

    fn pop_locked(inner: &mut Inner<T>) -> Option<T> {
        for band in inner.bands.iter_mut() {
            if let Some(item) = band.pop() {
                inner.len -= 1;
                return Some(item);
            }
        }
        None
    }

    /// Closes the queue: pushes fail, blocked pops wake. Queued entries
    /// remain poppable (or use [`drain`](Self::drain) to reap them).
    pub fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
    }

    /// Removes and returns everything still queued, in dequeue order.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        let mut out = Vec::with_capacity(inner.len);
        while let Some(item) = Self::pop_locked(&mut inner) {
            out.push(item);
        }
        out
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Maximum entries the queue admits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bands_dequeue_in_priority_order() {
        let q = FairQueue::new(16);
        q.push(Priority::Low, "a", 3).unwrap();
        q.push(Priority::Normal, "a", 2).unwrap();
        q.push(Priority::High, "a", 1).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn clients_rotate_within_a_band() {
        let q = FairQueue::new(16);
        // Client "hog" floods before "meek" submits one request.
        for i in 0..4 {
            q.push(Priority::Normal, "hog", ("hog", i)).unwrap();
        }
        q.push(Priority::Normal, "meek", ("meek", 0)).unwrap();
        let order: Vec<&str> = (0..5).map(|_| q.pop().unwrap().0).collect();
        // "meek" is served second, not fifth.
        assert_eq!(order[1], "meek");
        assert_eq!(order.iter().filter(|c| **c == "hog").count(), 4);
    }

    #[test]
    fn capacity_bound_sheds_load() {
        let q = FairQueue::new(2);
        q.push(Priority::Normal, "a", 1).unwrap();
        q.push(Priority::Normal, "b", 2).unwrap();
        assert_eq!(
            q.push(Priority::High, "c", 3),
            Err(PushError::QueueFull { depth: 2 })
        );
        q.pop().unwrap();
        q.push(Priority::High, "c", 3).unwrap();
    }

    #[test]
    fn close_wakes_blocked_workers_and_rejects_pushes() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(4));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
        assert_eq!(q.push(Priority::Normal, "a", 1), Err(PushError::Closed));
    }

    #[test]
    fn drain_reaps_everything_in_dequeue_order() {
        let q = FairQueue::new(8);
        q.push(Priority::Low, "a", 30).unwrap();
        q.push(Priority::High, "a", 10).unwrap();
        q.push(Priority::Normal, "b", 20).unwrap();
        q.close();
        assert_eq!(q.drain(), vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_timeout_returns_none_while_open() {
        let q: FairQueue<u32> = FairQueue::new(2);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
        assert!(!q.is_closed());
    }
}
