//! The join service itself: a shared worker pool executing admitted
//! requests through `skewjoin::run_join`, wrapped in the three serving
//! mechanisms — admission control ([`FairQueue`]), the
//! [`MemoryGovernor`], and the planner's [`PlanCache`].
//!
//! ## Lifecycle and accounting
//!
//! Every submission increments `service.submitted` and ends in exactly one
//! terminal counter:
//!
//! * `service.rejected` — load-shed at admission (queue full, budget
//!   infeasible, injected admission fault, shutdown); never admitted.
//! * `service.completed` / `service.cancelled` / `service.failed` — the
//!   three ends of an *admitted* request.
//!
//! The reconciliation invariant the soak harness asserts:
//! `submitted = admitted + rejected` and
//! `admitted = completed + cancelled + failed`, exactly, after shutdown.
//!
//! ## Degradation ladder
//!
//! A request whose memory estimate exceeds the global budget is degraded at
//! dispatch, in order: (1) narrower radix bits, shrinking partition
//! metadata and write-combining footprints; (2) for GPU algorithms, the
//! simulated device memory is clamped to the budget so the executor's own
//! ladder (`GpuResourceExhausted` → finer fan-out → CPU fallback) engages
//! organically; (3) a join that cannot fit in memory even fully degraded
//! runs out-of-core through the grace-hash spill (`spill:<bits>` rung): the
//! working set is capped at a fraction of the budget and the relations
//! stream through scratch disk reserved from the governor's disk pool;
//! (4) only a request whose *spill* is also infeasible (scratch footprint
//! over the disk budget, or a memory budget below the spill floor) is
//! rejected *at admission*, before it occupies queue space. Every rung
//! taken is reported in the response's `degradations`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skewjoin::common::hash::RadixConfig;
use skewjoin::common::json::Json;
use skewjoin::common::metrics::{default_latency_bounds_micros, MetricsRegistry};
use skewjoin::common::sink::merge_key_counts;
use skewjoin::common::{
    faults, CancelToken, JoinError, JoinStats, Key, KeyCountSink, Relation, SinkSpec,
};
use skewjoin::cpu::{SpillConfig, MIN_SPILL_BUDGET};
use skewjoin::planner::{
    estimate_join_memory, estimate_spill_cost, PlanCache, PlannerOptions, TargetDevice,
};
use skewjoin::{run_join, run_shard_join, Algorithm, CpuAlgorithm, GpuAlgorithm, JoinConfig};
use skewjoin_datagen::{PaperWorkload, WorkloadSpec};

use crate::governor::{MemoryGovernor, ReserveError};
use crate::queue::{FairQueue, PushError};
use crate::request::{
    AlgoChoice, JoinRequest, JoinResponse, JoinSummary, Outcome, RequestId, RequestPayload,
};

/// Failpoint hit once per submission, before admission. Arming it injects
/// typed `Rejected` outcomes.
pub const FAILPOINT_ADMIT: &str = "service.admit";
/// Failpoint hit once per dequeued request, before execution. Arming it
/// injects typed `Failed` outcomes.
pub const FAILPOINT_EXECUTE: &str = "service.execute";

/// Radix-bit floor the governor's narrowing rung stops at.
const MIN_RADIX_BITS: u32 = 6;

/// Service deployment knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing joins (each join additionally parallelizes
    /// internally per its `JoinConfig`).
    pub workers: usize,
    /// Bound on queued (admitted, not yet executing) requests.
    pub queue_capacity: usize,
    /// Global memory budget in bytes the governor reserves against.
    pub memory_budget: u64,
    /// Scratch-disk budget in bytes for spilled joins. `0` disables the
    /// spill rung entirely: over-budget joins are rejected at admission as
    /// before.
    pub disk_budget: u64,
    /// Directory spilled joins create their scratch directories under.
    /// `None` uses `SKEWJOIN_SCRATCH_DIR` or the system temp dir.
    pub scratch_dir: Option<PathBuf>,
    /// Planner decisions cached.
    pub plan_cache_capacity: usize,
    /// Execution configuration for requests that do not carry their own.
    pub join_config: JoinConfig,
    /// Deadline applied to requests that do not set one. `None` = no
    /// deadline.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            memory_budget: 1 << 30,
            disk_budget: 8 << 30,
            scratch_dir: None,
            plan_cache_capacity: 64,
            join_config: JoinConfig::default(),
            default_deadline: None,
        }
    }
}

/// An admitted request travelling from `submit` to a worker.
struct Pending {
    id: RequestId,
    request: JoinRequest,
    cancel: CancelToken,
    enqueued: Instant,
    tx: mpsc::Sender<JoinResponse>,
}

struct Shared {
    cfg: ServiceConfig,
    queue: FairQueue<Pending>,
    governor: Arc<MemoryGovernor>,
    plan_cache: PlanCache,
    metrics: MetricsRegistry,
    next_id: AtomicU64,
    cancels: Mutex<HashMap<RequestId, CancelToken>>,
}

/// Handle to one submitted request; resolves to its [`JoinResponse`].
pub struct Ticket {
    id: RequestId,
    rx: mpsc::Receiver<JoinResponse>,
}

impl Ticket {
    /// The service-assigned request id (usable with
    /// [`JoinService::cancel`]).
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the response arrives. A service that dropped the
    /// channel without responding (a bug; the soak harness treats it as a
    /// violation) surfaces as a `Failed` outcome rather than a panic.
    pub fn wait(self) -> JoinResponse {
        let id = self.id;
        self.rx.recv().unwrap_or(JoinResponse {
            id,
            outcome: Outcome::Failed {
                error: "response channel dropped without a response".into(),
            },
        })
    }

    /// Bounded wait; `None` on timeout (the request keeps running).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JoinResponse> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// The concurrent join service. Construct with [`JoinService::start`];
/// submissions are `&self`, so share it in an `Arc` across client threads.
pub struct JoinService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shut_down: AtomicBool,
}

impl JoinService {
    /// Starts the worker pool and returns the running service.
    pub fn start(cfg: ServiceConfig) -> Arc<JoinService> {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queue: FairQueue::new(cfg.queue_capacity),
            governor: MemoryGovernor::with_disk(cfg.memory_budget, cfg.disk_budget),
            plan_cache: PlanCache::new(cfg.plan_cache_capacity),
            metrics: MetricsRegistry::new(),
            next_id: AtomicU64::new(1),
            cancels: Mutex::new(HashMap::new()),
            cfg,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("skewjoind-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Arc::new(JoinService {
            shared,
            workers: Mutex::new(handles),
            shut_down: AtomicBool::new(false),
        })
    }

    /// Submits a request. Always returns a ticket; admission failures
    /// resolve it immediately with a typed [`Outcome::Rejected`].
    pub fn submit(&self, request: JoinRequest) -> Ticket {
        let shared = &self.shared;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { id, rx };
        shared.metrics.counter("service.submitted").inc();

        let reject = |reason: String, retry_after: Duration| {
            shared.metrics.counter("service.rejected").inc();
            let _ = tx.send(JoinResponse {
                id,
                outcome: Outcome::Rejected {
                    reason,
                    retry_after,
                },
            });
        };

        if faults::fire(FAILPOINT_ADMIT) {
            reject(
                format!("{}: injected admission fault", faults::PANIC_PREFIX),
                self.retry_after(),
            );
            return ticket;
        }

        // Budget-infeasibility is an *admission* decision: a request whose
        // fully-degraded footprint exceeds memory *and* cannot spill would
        // only ever occupy queue space before failing, so it is shed here.
        if let Err(reason) = self.fits_budget_degraded(&request) {
            reject(reason, self.retry_after());
            return ticket;
        }

        let cancel = match request.deadline.or(shared.cfg.default_deadline) {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        let pending = Pending {
            id,
            request,
            cancel: cancel.clone(),
            enqueued: Instant::now(),
            tx: tx.clone(),
        };
        let priority = pending.request.priority;
        let client = pending.request.client.clone();
        match shared.queue.push(priority, &client, pending) {
            Ok(()) => {
                shared.metrics.counter("service.admitted").inc();
                shared
                    .metrics
                    .gauge("service.queue_depth")
                    .set(shared.queue.len() as u64);
                shared
                    .cancels
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(id, cancel);
            }
            Err(PushError::QueueFull { depth }) => {
                reject(format!("queue full ({depth} queued)"), self.retry_after());
            }
            Err(PushError::Closed) => {
                reject("service is shutting down".into(), Duration::from_secs(1));
            }
        }
        ticket
    }

    /// Cooperatively cancels an in-flight request. `true` if the id was
    /// known (admitted and not yet resolved).
    pub fn cancel(&self, id: RequestId) -> bool {
        let cancels = self
            .shared
            .cancels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match cancels.get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// The service's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The memory governor (budget, occupancy, peak).
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.shared.governor
    }

    /// The plan cache (hit/miss counters).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.shared.plan_cache
    }

    /// Entries currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// One JSON document with metrics, governor, and plan-cache state —
    /// what the TCP `metrics` op and the CLI report.
    pub fn snapshot(&self) -> Json {
        let shared = &self.shared;
        Json::obj(vec![
            ("metrics", shared.metrics.snapshot()),
            (
                "governor",
                Json::obj(vec![
                    ("budget_bytes", Json::from_u64(shared.governor.budget())),
                    (
                        "occupancy_bytes",
                        Json::from_u64(shared.governor.occupancy()),
                    ),
                    ("peak_bytes", Json::from_u64(shared.governor.peak())),
                    (
                        "disk_budget_bytes",
                        Json::from_u64(shared.governor.disk_budget()),
                    ),
                    (
                        "disk_occupancy_bytes",
                        Json::from_u64(shared.governor.disk_occupancy()),
                    ),
                    (
                        "disk_peak_bytes",
                        Json::from_u64(shared.governor.disk_peak()),
                    ),
                    ("waiters", Json::from_u64(shared.governor.waiters())),
                ]),
            ),
            (
                "plan_cache",
                Json::obj(vec![
                    ("hits", Json::from_u64(shared.plan_cache.hits())),
                    ("misses", Json::from_u64(shared.plan_cache.misses())),
                    ("entries", Json::from_u64(shared.plan_cache.len() as u64)),
                ]),
            ),
        ])
    }

    /// Closes admission, resolves everything still queued as
    /// `Cancelled { phase: "shutdown" }`, and joins the workers. In-flight
    /// joins run to their next phase boundary. Idempotent.
    pub fn shutdown(&self) {
        if self.shut_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let shared = &self.shared;
        shared.queue.close();
        // Raise every live token so in-flight joins stop at the next phase
        // boundary instead of running to completion.
        for token in shared
            .cancels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            token.cancel();
        }
        for pending in shared.queue.drain() {
            finish(
                shared,
                pending.id,
                &pending.tx,
                Outcome::Cancelled {
                    phase: "shutdown".into(),
                },
            );
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        shared
            .metrics
            .gauge("service.queue_depth")
            .set(shared.queue.len() as u64);
    }

    /// Backoff hint scaled to service pressure: deeper queue and more
    /// reservations blocked on the governor both mean freed capacity will
    /// be contended, so the hint grows with each.
    fn retry_after(&self) -> Duration {
        retry_after_hint(
            self.shared.queue.len() as u64,
            self.shared.governor.waiters(),
        )
    }

    /// `Ok` if the request fits the budget after every degradation rung
    /// (narrowest radix, CPU fallback, grace-hash spill); `Err(reason)`
    /// otherwise.
    fn fits_budget_degraded(&self, request: &JoinRequest) -> Result<(), String> {
        let cfg = &self.shared.cfg;
        let algorithm = match request.algo {
            AlgoChoice::Fixed(a) => a,
            AlgoChoice::Auto(TargetDevice::Cpu) => Algorithm::Cpu(CpuAlgorithm::Csh),
            AlgoChoice::Auto(TargetDevice::Gpu) => Algorithm::Gpu(GpuAlgorithm::Gsh),
        };
        // The floor of the ladder is the CPU (fallback) algorithm at the
        // narrowest fan-out.
        let floor_algo = Algorithm::Cpu(match algorithm {
            Algorithm::Cpu(a) => a,
            Algorithm::Gpu(GpuAlgorithm::Gbase) => CpuAlgorithm::Cbase,
            Algorithm::Gpu(GpuAlgorithm::Gsh) => CpuAlgorithm::Csh,
        });
        let mut floor_cfg = request
            .config
            .clone()
            .unwrap_or_else(|| cfg.join_config.clone());
        floor_cfg.cpu.radix = RadixConfig::two_pass(MIN_RADIX_BITS);
        let est = estimate_join_memory(
            floor_algo,
            request.payload.r_tuples(),
            request.payload.s_tuples(),
            &floor_cfg,
        );
        if est.total_bytes() <= cfg.memory_budget {
            return Ok(());
        }
        // The in-memory floor does not fit; the spill rung is the last
        // resort. It needs a working set of at least MIN_SPILL_BUDGET from
        // the memory budget and the scratch footprint from the disk budget.
        let spill_budget = spill_working_set(cfg.memory_budget);
        let spill_est = estimate_spill_cost(
            request.payload.r_tuples(),
            request.payload.s_tuples(),
            spill_budget,
        );
        if spill_budget > cfg.memory_budget {
            return Err(format!(
                "memory estimate {} B exceeds budget {} B even fully degraded, and the budget \
                 is below the {MIN_SPILL_BUDGET} B spill floor",
                est.total_bytes(),
                cfg.memory_budget
            ));
        }
        if !spill_est.fits_disk(cfg.disk_budget) {
            return Err(format!(
                "memory estimate {} B exceeds budget {} B even fully degraded, and the spill \
                 would need {} B of scratch against a {} B disk budget",
                est.total_bytes(),
                cfg.memory_budget,
                spill_est.disk_bytes,
                cfg.disk_budget
            ));
        }
        Ok(())
    }
}

/// The bounded in-memory working set a spilled join runs under: most of the
/// budget, leaving headroom for the service's own structures, floored at
/// the grace join's minimum.
fn spill_working_set(memory_budget: u64) -> u64 {
    (memory_budget / 4 * 3).max(MIN_SPILL_BUDGET)
}

/// Backoff hint from the two congestion signals a rejected client cares
/// about: queued requests ahead of it and reservations already blocked on
/// the governor. Monotone in both — pinned by a unit test, because clients
/// build retry loops on this.
fn retry_after_hint(queue_depth: u64, governor_waiters: u64) -> Duration {
    Duration::from_millis(10 + 5 * queue_depth + 25 * governor_waiters)
}

impl Drop for JoinService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(pending) = shared.queue.pop() {
        shared
            .metrics
            .gauge("service.queue_depth")
            .set(shared.queue.len() as u64);
        execute(shared, pending);
    }
}

/// Records the terminal counter for `outcome` and delivers the response.
/// Exactly one `finish` happens per admitted request — the reconciliation
/// invariant hangs on that.
fn finish(shared: &Shared, id: RequestId, tx: &mpsc::Sender<JoinResponse>, outcome: Outcome) {
    let counter = match outcome {
        Outcome::Completed(_) => "service.completed",
        Outcome::Cancelled { .. } => "service.cancelled",
        Outcome::Failed { .. } => "service.failed",
        // Rejections are accounted at submit; an admitted request never
        // resolves to Rejected.
        Outcome::Rejected { .. } => unreachable!("admitted requests cannot be rejected"),
    };
    shared.metrics.counter(counter).inc();
    shared
        .cancels
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&id);
    // A client that dropped its ticket just doesn't read the response; the
    // accounting above already happened.
    let _ = tx.send(JoinResponse { id, outcome });
}

/// One join attempt's outcome: stats plus per-key counts when the request
/// asked for them (sharded requests always do).
type AttemptResult = Result<(JoinStats, Option<Vec<(Key, u64)>>), JoinError>;

fn execute(shared: &Arc<Shared>, pending: Pending) {
    let Pending {
        id,
        request,
        cancel,
        enqueued,
        tx,
    } = pending;
    let queue_wait = enqueued.elapsed();
    shared
        .metrics
        .histogram(
            "service.queue_wait_micros",
            &default_latency_bounds_micros(),
        )
        .observe(queue_wait.as_micros() as u64);

    if cancel.is_cancelled() {
        return finish(
            shared,
            id,
            &tx,
            Outcome::Cancelled {
                phase: "queued".into(),
            },
        );
    }
    if faults::fire(FAILPOINT_EXECUTE) {
        let err = JoinError::BackendUnavailable(format!(
            "{}: injected execution fault",
            faults::PANIC_PREFIX
        ));
        return finish(
            shared,
            id,
            &tx,
            Outcome::Failed {
                error: err.to_string(),
            },
        );
    }

    // Materialize input relations.
    let (r, s): (Arc<Relation>, Arc<Relation>) = match &request.payload {
        RequestPayload::Inline { r, s } => (Arc::clone(r), Arc::clone(s)),
        RequestPayload::Generate { tuples, zipf, seed } => {
            let w = PaperWorkload::generate(WorkloadSpec::paper(*tuples, *zipf, *seed));
            (Arc::new(w.r), Arc::new(w.s))
        }
    };

    // Resolve the algorithm (plan cache for Auto requests).
    let mut cfg = request
        .config
        .clone()
        .unwrap_or_else(|| shared.cfg.join_config.clone());
    let (mut algorithm, plan_cache_hit) = match request.algo {
        AlgoChoice::Fixed(a) => (a, false),
        AlgoChoice::Auto(device) => {
            let opts = PlannerOptions {
                device,
                cpu: cfg.cpu.clone(),
                gpu: cfg.gpu.clone(),
            };
            let (plan, hit) = shared.plan_cache.plan(&r, &s, &opts);
            (plan.algorithm, hit)
        }
    };

    // Memory-governor degradation ladder (see module docs).
    let mut degradations: Vec<String> = Vec::new();
    let budget = shared.governor.budget();
    let mut est = estimate_join_memory(algorithm, r.len(), s.len(), &cfg);
    while est.total_bytes() > budget && cfg.cpu.radix.total_bits() > MIN_RADIX_BITS {
        let narrower = cfg
            .cpu
            .radix
            .total_bits()
            .saturating_sub(2)
            .max(MIN_RADIX_BITS);
        cfg.cpu.radix = RadixConfig::two_pass(narrower);
        if !algorithm.is_cpu() {
            cfg.gpu.radix = Some(RadixConfig::two_pass(narrower));
        }
        degradations.push(format!(
            "governor: narrowed radix to {narrower} bits (estimate {} B > budget {budget} B)",
            est.total_bytes()
        ));
        est = estimate_join_memory(algorithm, r.len(), s.len(), &cfg);
    }
    if est.total_bytes() > budget {
        if let Algorithm::Gpu(gpu_algo) = algorithm {
            // The CPU fallback is what admission guaranteed feasible, so
            // its reservation is earmarked first; the GPU attempt only
            // gets the slack. A too-small grant raises
            // GpuResourceExhausted inside the simulator and the
            // executor's own ladder (finer fan-out, then CPU fallback)
            // takes over organically.
            let fallback = Algorithm::Cpu(match gpu_algo {
                GpuAlgorithm::Gbase => CpuAlgorithm::Cbase,
                GpuAlgorithm::Gsh => CpuAlgorithm::Csh,
            });
            let fallback_est = estimate_join_memory(fallback, r.len(), s.len(), &cfg);
            let slack = budget
                .saturating_sub(fallback_est.total_bytes())
                .max(1 << 10);
            cfg.gpu.spec.global_mem_bytes = cfg.gpu.spec.global_mem_bytes.min(slack as usize);
            degradations.push(format!(
                "governor: clamped device memory to {} B; relying on the {gpu_algo} \
                 degradation ladder",
                cfg.gpu.spec.global_mem_bytes
            ));
            est = fallback_est;
        }
    }

    // Spill rung: when even the fully-degraded in-memory floor cannot fit,
    // the join runs out-of-core through the grace-hash spill — a bounded
    // working set from the memory budget, the relations streamed through
    // scratch disk reserved from the governor's disk pool. GPU algorithms
    // switch to their CPU counterpart first (the spill path is CPU-only).
    let mut reserve_bytes = est.total_bytes();
    let mut spill_disk_bytes = 0u64;
    if est.total_bytes() > budget {
        let spill_budget = spill_working_set(budget);
        let spill_est = estimate_spill_cost(r.len(), s.len(), spill_budget);
        if spill_budget <= budget && spill_est.fits_disk(shared.governor.disk_budget()) {
            if let Algorithm::Gpu(gpu_algo) = algorithm {
                let fallback = Algorithm::Cpu(match gpu_algo {
                    GpuAlgorithm::Gbase => CpuAlgorithm::Cbase,
                    GpuAlgorithm::Gsh => CpuAlgorithm::Csh,
                });
                degradations.push(format!(
                    "governor: {gpu_algo}→{} — out-of-core execution is CPU-only",
                    fallback.name()
                ));
                algorithm = fallback;
            }
            let spill = SpillConfig {
                scratch_dir: shared.cfg.scratch_dir.clone(),
                ..SpillConfig::with_budget(spill_budget)
            };
            degradations.push(format!(
                "governor: spill:{} — floor estimate {} B exceeds budget {budget} B; \
                 grace-hash spill under a {spill_budget} B working set \
                 ({} B scratch reserved)",
                spill.partition_bits,
                est.total_bytes(),
                spill_est.disk_bytes
            ));
            cfg.cpu.spill = Some(spill);
            shared.metrics.counter("service.spilled").inc();
            reserve_bytes = spill_budget;
            spill_disk_bytes = spill_est.disk_bytes;
        }
        // If the spill is infeasible too, fall through: the memory
        // reservation below fails typed (admission should have shed this).
    }

    // Reserve; blocks (queuing under memory pressure) until space frees or
    // the deadline/cancel fires. `service.memory_waits` counts requests
    // that could not reserve immediately — the observable for "the budget
    // forced queuing".
    let reservation = match shared.governor.try_reserve(reserve_bytes) {
        Some(res) => Ok(res),
        None => {
            shared.metrics.counter("service.memory_waits").inc();
            shared.governor.reserve(reserve_bytes, &cancel)
        }
    };
    let reservation = match reservation {
        Ok(res) => res,
        Err(ReserveError::Cancelled) => {
            return finish(
                shared,
                id,
                &tx,
                Outcome::Cancelled {
                    phase: "memory_wait".into(),
                },
            );
        }
        Err(ReserveError::ExceedsBudget { requested, budget }) => {
            // Admission-time feasibility should have shed this; keep it a
            // typed failure rather than a panic if an estimate drifts.
            return finish(
                shared,
                id,
                &tx,
                Outcome::Failed {
                    error: format!(
                        "memory estimate {requested} B exceeds budget {budget} B post-degradation"
                    ),
                },
            );
        }
    };

    // The scratch-disk reservation for a spilled join, held (like the
    // memory reservation) for the duration of the run. Taken second, after
    // memory, in the same order everywhere — no lock-order inversion.
    let disk_reservation = if spill_disk_bytes > 0 {
        match shared.governor.try_reserve_disk(spill_disk_bytes) {
            Some(res) => Some(res),
            None => {
                shared.metrics.counter("service.disk_waits").inc();
                match shared.governor.reserve_disk(spill_disk_bytes, &cancel) {
                    Ok(res) => Some(res),
                    Err(ReserveError::Cancelled) => {
                        return finish(
                            shared,
                            id,
                            &tx,
                            Outcome::Cancelled {
                                phase: "disk_wait".into(),
                            },
                        );
                    }
                    Err(ReserveError::ExceedsBudget { requested, budget }) => {
                        return finish(
                            shared,
                            id,
                            &tx,
                            Outcome::Failed {
                                error: format!(
                                    "spill scratch estimate {requested} B exceeds disk budget \
                                     {budget} B post-degradation"
                                ),
                            },
                        );
                    }
                }
            }
        }
    } else {
        None
    };

    cfg.cpu.cancel = cancel.clone();
    let started = Instant::now();
    // Sharded (cluster) requests — and any request asking for per-key
    // counts — run through `run_shard_join` with key-counting sinks, so
    // the summary can carry the counts and trace the coordinator merges.
    // Everything else keeps the cheap counting path.
    let wants_counts = request.shard.is_some() || request.want_key_counts;
    let run_once = |cfg: &JoinConfig| -> AttemptResult {
        if wants_counts {
            let out = run_shard_join(
                algorithm,
                &r,
                &s,
                cfg,
                request.shard.as_ref(),
                |_: usize| KeyCountSink::new(),
            )?;
            let counts: Vec<(Key, u64)> = merge_key_counts(&out.sinks).into_iter().collect();
            Ok((out.stats, Some(counts)))
        } else {
            run_join(algorithm, &r, &s, cfg, SinkSpec::Count).map(|stats| (stats, None))
        }
    };
    let mut result = run_once(&cfg);
    if cfg.cpu.spill.is_some() {
        if let Err(JoinError::SpillFailed(msg)) = &result {
            // Spill failures are I/O-shaped (transient fault, full scratch
            // device) and the failed attempt already cleaned up after
            // itself, so one retry is cheap and safe.
            shared.metrics.counter("service.spill_retries").inc();
            let first = msg.clone();
            result = run_once(&cfg).map(|(mut stats, counts)| {
                stats
                    .trace
                    .record_degradation(format!("spill retry succeeded after: {first}"));
                (stats, counts)
            });
        }
    }
    drop(reservation);
    drop(disk_reservation);

    let outcome = match result {
        Ok((stats, key_counts)) => {
            shared
                .metrics
                .histogram("service.exec_micros", &default_latency_bounds_micros())
                .observe(started.elapsed().as_micros() as u64);
            let mut all_degradations = degradations;
            all_degradations.extend(stats.trace.degradations.iter().cloned());
            Outcome::Completed(JoinSummary {
                algorithm: stats.algorithm.clone(),
                result_count: stats.result_count,
                checksum: stats.checksum,
                exec_nanos: stats.total_time().as_nanos() as u64,
                queue_nanos: queue_wait.as_nanos() as u64,
                degradations: all_degradations,
                plan_cache_hit,
                trace: wants_counts.then(|| stats.trace.clone()),
                key_counts,
            })
        }
        Err(JoinError::Cancelled { phase }) => Outcome::Cancelled { phase },
        Err(e) => Outcome::Failed {
            error: e.to_string(),
        },
    };
    finish(shared, id, &tx, outcome);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_service(workers: usize, queue: usize, budget: u64) -> Arc<JoinService> {
        let mut cfg = ServiceConfig {
            workers,
            queue_capacity: queue,
            memory_budget: budget,
            ..ServiceConfig::default()
        };
        cfg.join_config.cpu.threads = 2;
        JoinService::start(cfg)
    }

    fn csh() -> AlgoChoice {
        AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Csh))
    }

    #[test]
    fn completes_a_generate_request() {
        let svc = small_service(2, 8, 1 << 30);
        let resp = svc
            .submit(JoinRequest::generate("t", csh(), 2048, 0.9, 7))
            .wait();
        match resp.outcome {
            Outcome::Completed(summary) => {
                assert!(summary.result_count > 0);
                assert_eq!(summary.algorithm, "CSH");
            }
            other => panic!("expected completion, got {other:?}"),
        }
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn key_counts_travel_with_the_summary() {
        let svc = small_service(2, 8, 1 << 30);
        let mut req = JoinRequest::generate("t", csh(), 2048, 0.9, 7);
        req.want_key_counts = true;
        let resp = svc.submit(req).wait();
        match resp.outcome {
            Outcome::Completed(summary) => {
                let counts = summary.key_counts.expect("requested key counts");
                let total: u64 = counts.iter().map(|&(_, c)| c).sum();
                assert_eq!(total, summary.result_count, "counts must sum to the total");
                assert!(summary.trace.is_some(), "trace travels with the counts");
            }
            other => panic!("expected completion, got {other:?}"),
        }
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn misrouted_shard_request_fails_typed() {
        use skewjoin::ShardPartition;
        // A zipf workload spreads keys over all four shards, so a slot-0
        // restriction with no hot keys must trip the misrouting check.
        let svc = small_service(1, 8, 1 << 30);
        let mut req = JoinRequest::generate("t", csh(), 2048, 0.5, 7);
        req.shard = Some(ShardPartition {
            slot: 0,
            shards: 4,
            hot_keys: vec![],
        });
        let resp = svc.submit(req).wait();
        match resp.outcome {
            Outcome::Failed { error } => assert!(error.contains("misrouting"), "{error}"),
            other => panic!("expected a typed misrouting failure, got {other:?}"),
        }
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn rejects_when_queue_is_full() {
        // One worker, tiny queue, many submissions: some must shed.
        let svc = small_service(1, 2, 1 << 30);
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| svc.submit(JoinRequest::generate(&format!("c{i}"), csh(), 4096, 0.9, i)))
            .collect();
        let outcomes: Vec<JoinResponse> = tickets.into_iter().map(Ticket::wait).collect();
        let rejected = outcomes
            .iter()
            .filter(|o| matches!(o.outcome, Outcome::Rejected { .. }))
            .count();
        assert!(rejected > 0, "expected load shedding");
        for o in &outcomes {
            if let Outcome::Rejected { retry_after, .. } = &o.outcome {
                assert!(*retry_after > Duration::ZERO);
            }
        }
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn infeasible_memory_without_disk_is_rejected_at_admission() {
        // With the spill rung disabled (no disk budget) the seed behavior
        // is preserved: an over-budget request is shed before queuing.
        let mut cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            memory_budget: 1 << 16,
            disk_budget: 0,
            ..ServiceConfig::default()
        };
        cfg.join_config.cpu.threads = 2;
        let svc = JoinService::start(cfg);
        let resp = svc
            .submit(JoinRequest::generate("t", csh(), 1 << 20, 0.0, 1))
            .wait();
        match resp.outcome {
            Outcome::Rejected { reason, .. } => assert!(reason.contains("budget"), "{reason}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn over_budget_join_completes_via_spill_rung() {
        // The same class of request the seed build hard-rejects: a 2^17
        // tuple join against a 64 KiB memory budget (the in-memory floor
        // needs megabytes). With a disk budget it must now complete through
        // the grace-hash spill and produce exactly the in-memory answer.
        let tuples = 1usize << 17;
        let scratch = tempdir_for_test("svc-spill");
        let mut cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            memory_budget: 1 << 16,
            disk_budget: 1 << 30,
            scratch_dir: Some(scratch.clone()),
            ..ServiceConfig::default()
        };
        cfg.join_config.cpu.threads = 2;
        let svc = JoinService::start(cfg);
        let resp = svc
            .submit(JoinRequest::generate("t", csh(), tuples, 0.0, 1))
            .wait();
        let summary = match resp.outcome {
            Outcome::Completed(summary) => summary,
            other => panic!("expected spill completion, got {other:?}"),
        };
        assert!(
            summary.degradations.iter().any(|d| d.contains("spill:")),
            "expected a spill rung in {:?}",
            summary.degradations
        );
        assert_eq!(summary.algorithm, "Grace(cbase-npj)");

        // Ground truth: the identical workload joined fully in memory.
        let w = PaperWorkload::generate(WorkloadSpec::paper(tuples, 0.0, 1));
        let mut ref_cfg = JoinConfig::default();
        ref_cfg.cpu.threads = 2;
        let expected = run_join(
            Algorithm::Cpu(CpuAlgorithm::Csh),
            &w.r,
            &w.s,
            &ref_cfg,
            SinkSpec::Count,
        )
        .unwrap();
        assert_eq!(summary.result_count, expected.result_count);
        assert_eq!(summary.checksum, expected.checksum);

        assert_eq!(svc.metrics().counter_value("service.spilled"), 1);
        assert!(svc.governor().disk_peak() > 0, "no disk was reserved");
        assert!(svc.governor().peak() <= svc.governor().budget());
        svc.shutdown();
        reconcile(&svc);
        assert_eq!(svc.governor().disk_occupancy(), 0);
        // The spilled join left no scratch behind.
        let leftovers: Vec<_> = std::fs::read_dir(&scratch)
            .map(|it| it.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "scratch leak: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn retry_after_hint_is_monotone_in_both_pressure_signals() {
        let base = retry_after_hint(0, 0);
        assert!(base > Duration::ZERO);
        let mut prev = base;
        for depth in 1..=8 {
            let hint = retry_after_hint(depth, 0);
            assert!(hint > prev, "queue depth {depth} did not raise the hint");
            prev = hint;
        }
        let mut prev = base;
        for waiters in 1..=8 {
            let hint = retry_after_hint(0, waiters);
            assert!(hint > prev, "waiters {waiters} did not raise the hint");
            prev = hint;
        }
        // Joint pressure dominates either alone.
        assert!(retry_after_hint(4, 4) > retry_after_hint(4, 0));
        assert!(retry_after_hint(4, 4) > retry_after_hint(0, 4));
    }

    fn tempdir_for_test(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "skewjoin-test-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create test scratch dir");
        dir
    }

    #[test]
    fn deadline_in_the_past_cancels_at_a_named_boundary() {
        let svc = small_service(1, 8, 1 << 30);
        let mut req = JoinRequest::generate("t", csh(), 1 << 15, 0.9, 3);
        req.deadline = Some(Duration::ZERO);
        let resp = svc.submit(req).wait();
        match resp.outcome {
            Outcome::Cancelled { phase } => assert!(!phase.is_empty()),
            other => panic!("expected cancellation, got {other:?}"),
        }
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn explicit_cancel_resolves_queued_request() {
        // Single worker busy with a big join; the queued one gets cancelled.
        let svc = small_service(1, 8, 1 << 30);
        let busy = svc.submit(JoinRequest::generate("a", csh(), 1 << 16, 1.0, 5));
        let queued = svc.submit(JoinRequest::generate("b", csh(), 1 << 16, 1.0, 6));
        assert!(svc.cancel(queued.id()));
        let resp = queued.wait();
        assert!(matches!(resp.outcome, Outcome::Cancelled { .. }));
        let _ = busy.wait();
        svc.shutdown();
        reconcile(&svc);
        assert!(!svc.cancel(9999), "unknown ids are not cancellable");
    }

    #[test]
    fn governor_forces_gpu_ladder_under_tight_budget() {
        // Budget fits the CPU fallback but not the GPU estimate: the
        // service clamps device memory and the executor ladder lands on
        // the CPU, recording every rung.
        // At 16 Ki tuples/side the CPU estimate is ≈790 KB and the GPU
        // estimate ≈1.4 MB, so this budget admits the request (CPU floor
        // fits) but forces the GPU ladder.
        let tuples = 1 << 14;
        let budget = 1_000_000;
        let svc = small_service(1, 8, budget);
        let resp = svc
            .submit(JoinRequest::generate(
                "t",
                AlgoChoice::Fixed(Algorithm::Gpu(GpuAlgorithm::Gsh)),
                tuples,
                0.9,
                11,
            ))
            .wait();
        match resp.outcome {
            Outcome::Completed(summary) => {
                assert!(
                    summary.degradations.iter().any(|d| d.contains("governor")),
                    "expected a governor rung in {:?}",
                    summary.degradations
                );
                assert_eq!(summary.algorithm, "CSH", "expected the CPU fallback");
            }
            other => panic!("expected completion via ladder, got {other:?}"),
        }
        assert!(svc.governor().peak() <= budget);
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn auto_requests_hit_the_plan_cache_on_repeat() {
        let svc = small_service(1, 8, 1 << 30);
        let req = || JoinRequest::generate("t", AlgoChoice::Auto(TargetDevice::Cpu), 8192, 1.0, 9);
        let first = svc.submit(req()).wait();
        let second = svc.submit(req()).wait();
        match (&first.outcome, &second.outcome) {
            (Outcome::Completed(a), Outcome::Completed(b)) => {
                assert!(!a.plan_cache_hit);
                assert!(b.plan_cache_hit);
                assert_eq!(a.checksum, b.checksum);
            }
            other => panic!("expected two completions, got {other:?}"),
        }
        assert_eq!(svc.plan_cache().hits(), 1);
        assert_eq!(svc.plan_cache().misses(), 1);
        svc.shutdown();
        reconcile(&svc);
    }

    #[test]
    fn shutdown_resolves_queued_requests_as_cancelled() {
        let svc = small_service(1, 32, 1 << 30);
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| svc.submit(JoinRequest::generate("t", csh(), 1 << 15, 1.0, i)))
            .collect();
        svc.shutdown();
        let mut cancelled = 0;
        for t in tickets {
            match t.wait().outcome {
                Outcome::Completed(_) | Outcome::Failed { .. } => {}
                Outcome::Cancelled { .. } => cancelled += 1,
                Outcome::Rejected { .. } => {}
            }
        }
        assert!(cancelled > 0, "queued work should resolve as cancelled");
        reconcile(&svc);
    }

    /// Asserts the accounting invariant after shutdown.
    fn reconcile(svc: &JoinService) {
        let m = svc.metrics();
        let submitted = m.counter_value("service.submitted");
        let admitted = m.counter_value("service.admitted");
        let rejected = m.counter_value("service.rejected");
        let completed = m.counter_value("service.completed");
        let cancelled = m.counter_value("service.cancelled");
        let failed = m.counter_value("service.failed");
        assert_eq!(submitted, admitted + rejected, "submission accounting");
        assert_eq!(
            admitted,
            completed + cancelled + failed,
            "terminal accounting"
        );
    }
}
