//! Power-law graph edge generator.
//!
//! The paper's introduction motivates skew-conscious joins with graph
//! analytics: "The vertex degrees of real-world graphs often exhibit
//! power-law distributions. A small number of vertices can have millions of
//! neighbors […] join operations on graphs often see highly skewed join
//! keys." This module generates such graphs so the `graph_join` example can
//! run the motivating workload: a self-join of the edge table on
//! `e1.dst = e2.src` enumerates all 2-hop paths, and hub vertices make the
//! join key distribution heavily skewed.

use skewjoin_common::{Relation, Tuple};

use crate::rng::Rng;
use crate::zipf::ZipfWorkload;

/// A directed edge `(src, dst)` over `u32` vertex ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
}

/// A generated power-law graph: an edge list whose *destination* vertices
/// follow a zipf distribution (hub vertices attract many in-edges, the
/// classic preferential-attachment shape).
#[derive(Debug, Clone)]
pub struct PowerLawGraph {
    edges: Vec<Edge>,
    num_vertices: usize,
}

impl PowerLawGraph {
    /// Generates `num_edges` edges over `num_vertices` vertices; in-degrees
    /// follow zipf(`theta`) and out-degrees are near-uniform.
    pub fn generate(num_vertices: usize, num_edges: usize, theta: f64, seed: u64) -> Self {
        assert!(num_vertices > 0, "graph needs at least one vertex");
        // Hub structure on the destination side.
        let dst_dist = ZipfWorkload::new(num_vertices, theta, seed);
        let src_dist = ZipfWorkload::new(num_vertices, 0.0, seed ^ 0xABCD);
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
        let mut edges = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            // Ranks → vertex ids: rank order is already a permutation of the
            // vertex set, so take the rank index itself as the vertex id.
            let src = src_dist.draw(&mut rng) % num_vertices as u32;
            let dst = dst_dist.draw(&mut rng) % num_vertices as u32;
            edges.push(Edge { src, dst });
        }
        Self {
            edges,
            num_vertices,
        }
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Edge relation keyed by destination vertex (payload = edge id):
    /// the build side of a 2-hop path join.
    pub fn relation_by_dst(&self) -> Relation {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| Tuple::new(e.dst, i as u32))
            .collect()
    }

    /// Edge relation keyed by source vertex (payload = edge id):
    /// the probe side of a 2-hop path join.
    pub fn relation_by_src(&self) -> Relation {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| Tuple::new(e.src, i as u32))
            .collect()
    }

    /// Maximum in-degree across vertices (a measure of hub skew).
    pub fn max_in_degree(&self) -> usize {
        let mut deg = vec![0usize; self.num_vertices];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = PowerLawGraph::generate(100, 1000, 1.0, 7);
        assert_eq!(g.edges().len(), 1000);
        assert!(g.edges().iter().all(|e| (e.src as usize) < 100));
        assert!(g.edges().iter().all(|e| (e.dst as usize) < 100));
    }

    #[test]
    fn high_theta_produces_hubs() {
        let skewed = PowerLawGraph::generate(1000, 20_000, 1.0, 3);
        let flat = PowerLawGraph::generate(1000, 20_000, 0.0, 3);
        assert!(
            skewed.max_in_degree() > 3 * flat.max_in_degree(),
            "skewed max degree {} vs flat {}",
            skewed.max_in_degree(),
            flat.max_in_degree()
        );
    }

    #[test]
    fn relations_carry_edge_ids() {
        let g = PowerLawGraph::generate(10, 50, 0.5, 1);
        let by_dst = g.relation_by_dst();
        let by_src = g.relation_by_src();
        assert_eq!(by_dst.len(), 50);
        for (i, t) in by_dst.iter().enumerate() {
            assert_eq!(t.payload, i as u32);
            assert_eq!(t.key, g.edges()[i].dst);
        }
        assert_eq!(by_src[7].key, g.edges()[7].src);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PowerLawGraph::generate(50, 200, 0.9, 42);
        let b = PowerLawGraph::generate(50, 200, 0.9, 42);
        assert_eq!(a.edges(), b.edges());
    }
}
