//! A small deterministic PRNG for workload generation.
//!
//! [`Rng`] is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators", OOPSLA 2014): one 64-bit state word advanced by a
//! Weyl increment and finalized by an avalanche mix. It is not
//! cryptographic — it only needs to be fast, seedable, and statistically
//! adequate for generating join workloads, and its tiny state makes every
//! generator in this crate trivially reproducible from a `u64` seed.

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly random bits (upper half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled by 2^-53.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection step to remove modulo bias.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a non-empty range");
        let bound = bound as u64;
        // Rejection zone size: 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as usize;
            }
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniform draws should be close to 0.5.
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let x = rng.below(7);
            assert!(x < 7);
            counts[x] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With 100 elements an identity shuffle is astronomically unlikely.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn below_zero_rejected() {
        let _ = Rng::seed_from_u64(0).below(0);
    }
}
