//! Uniform and primary/foreign-key table generators.
//!
//! These cover the non-skewed corners of the evaluation space: the zipf
//! factor 0 points of Figures 1 and 4 are uniform draws, and the
//! primary/foreign-key generator produces the classic "every probe matches
//! exactly once" microbenchmark shape that the baselines were originally
//! tuned for.

use skewjoin_common::hash::mix32;
use skewjoin_common::{Key, Relation, Tuple};

use crate::rng::Rng;

/// Generates `num_tuples` tuples with keys drawn uniformly from a domain of
/// `num_keys` distinct values (the same bijective key spreading as the zipf
/// generator, so key spaces are comparable).
pub fn uniform_table(num_tuples: usize, num_keys: usize, seed: u64) -> Relation {
    assert!(num_keys > 0, "key domain must be non-empty");
    let salt = (seed as u32) ^ ((seed >> 32) as u32);
    let mut rng = Rng::seed_from_u64(seed);
    let mut tuples = Vec::with_capacity(num_tuples);
    for i in 0..num_tuples {
        let rank = rng.below(num_keys) as u32;
        tuples.push(Tuple::new(mix32(rank ^ salt), i as u32));
    }
    Relation::from_tuples(tuples)
}

/// Generates a primary-key relation: a random permutation of `num_tuples`
/// distinct keys, payload = row id.
pub fn primary_key_table(num_tuples: usize, seed: u64) -> Relation {
    let salt = (seed as u32) ^ ((seed >> 32) as u32);
    let mut keys: Vec<Key> = (0..num_tuples as u32).map(|i| mix32(i ^ salt)).collect();
    let mut rng = Rng::seed_from_u64(seed.wrapping_add(1));
    rng.shuffle(&mut keys);
    Relation::from_keys(&keys)
}

/// Generates a foreign-key relation referencing `primary`: every key is
/// drawn uniformly from the primary relation's keys, so each probe matches
/// exactly one build tuple.
pub fn foreign_key_table(primary: &Relation, num_tuples: usize, seed: u64) -> Relation {
    assert!(!primary.is_empty(), "primary relation must be non-empty");
    let mut rng = Rng::seed_from_u64(seed);
    let mut tuples = Vec::with_capacity(num_tuples);
    for i in 0..num_tuples {
        let pick = rng.below(primary.len());
        tuples.push(Tuple::new(primary[pick].key, i as u32));
    }
    Relation::from_tuples(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_table_stays_in_domain() {
        let t = uniform_table(1000, 16, 7);
        let distinct: HashSet<Key> = t.iter().map(|t| t.key).collect();
        assert!(distinct.len() <= 16);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let t = uniform_table(16_000, 16, 3);
        let mut counts = std::collections::HashMap::new();
        for tup in t.iter() {
            *counts.entry(tup.key).or_insert(0usize) += 1;
        }
        for &c in counts.values() {
            // 1000 expected; allow generous sampling noise.
            assert!((600..1400).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn primary_keys_are_distinct() {
        let t = primary_key_table(5000, 11);
        let distinct: HashSet<Key> = t.iter().map(|t| t.key).collect();
        assert_eq!(distinct.len(), 5000);
    }

    #[test]
    fn foreign_keys_all_resolve() {
        let pk = primary_key_table(100, 1);
        let fk = foreign_key_table(&pk, 1000, 2);
        let universe: HashSet<Key> = pk.iter().map(|t| t.key).collect();
        assert!(fk.iter().all(|t| universe.contains(&t.key)));
        assert_eq!(fk.len(), 1000);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_table(100, 8, 5), uniform_table(100, 8, 5));
        assert_eq!(primary_key_table(100, 5), primary_key_table(100, 5));
        assert_ne!(primary_key_table(100, 5), primary_key_table(100, 6));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn foreign_key_requires_primary() {
        let _ = foreign_key_table(&Relation::new(), 10, 0);
    }
}
