//! The paper's zipf workload generator (§V-A), implemented literally:
//!
//! > "we generate an array of intervals for a given zipf factor. Each array
//! > element stores an interval whose length corresponds to the probability
//! > of the element in the zipf distribution. Then we randomly assign a
//! > unique key to each interval. After that, for each input tuple, we
//! > generate a random number, and search it in the interval array. […] we
//! > model highly skewed cases by using the same interval array and unique
//! > key array for both table R and table S for a given zipf factor."
//!
//! With `n` intervals and zipf factor `θ`, interval `i` (1-based) has length
//! `(1/i^θ) / H_{n,θ}` where `H_{n,θ} = Σ 1/i^θ` is the generalized harmonic
//! number. At `θ = 1` and `n = 32 M` the hottest key covers `1/H ≈ 5.6 %` of
//! the mass — ≈1.79 M of 32 M tuples, exactly the figure quoted in §III.

use skewjoin_common::hash::mix32;
use skewjoin_common::{Key, Relation, Tuple};

use crate::rng::Rng;

/// A zipf key distribution shared by both join inputs.
///
/// Holds the cumulative interval array and the unique key assigned to each
/// interval. Construction is `O(n)`; drawing each tuple is `O(log n)`
/// (binary search, as in the paper).
///
/// ```
/// use skewjoin_datagen::ZipfWorkload;
///
/// // 10 000 possible keys, classic zipf (θ = 1).
/// let dist = ZipfWorkload::new(10_000, 1.0, 42);
/// let table = dist.generate_table(50_000, 7);
/// assert_eq!(table.len(), 50_000);
///
/// // The hottest key covers 1/H_n of the mass — about 10% here.
/// let hottest = dist.probability_of_rank(0);
/// assert!(hottest > 0.08 && hottest < 0.13);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// `cumulative[i]` = upper bound of interval `i`; non-decreasing,
    /// every element in `(0, 1]`, last element exactly 1.0.
    cumulative: Vec<f64>,
    /// Unique key of each interval (interval 0 is the most probable).
    keys: Vec<Key>,
    theta: f64,
}

impl ZipfWorkload {
    /// Builds the interval and key arrays for `num_keys` distinct keys with
    /// zipf factor `theta` (`0.0` = uniform, `1.0` = classic zipf).
    ///
    /// Keys are "randomly assigned" per the paper: a seeded bijective mix of
    /// the interval index spreads them over the `u32` domain while keeping
    /// them unique.
    ///
    /// # Panics
    /// Panics if `num_keys` is zero or `theta` is negative/non-finite.
    pub fn new(num_keys: usize, theta: f64, seed: u64) -> Self {
        assert!(num_keys > 0, "zipf workload needs at least one key");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "zipf factor must be a finite non-negative number"
        );
        assert!(
            num_keys <= (u32::MAX as usize) + 1,
            "key domain limited to u32"
        );

        // Interval lengths ∝ 1 / i^theta, normalized by the harmonic sum.
        let mut weights: Vec<f64> = Vec::with_capacity(num_keys);
        if theta == 0.0 {
            weights.resize(num_keys, 1.0);
        } else {
            for i in 1..=num_keys {
                weights.push(1.0 / (i as f64).powf(theta));
            }
        }
        let total: f64 = weights.iter().sum();

        let mut cumulative = Vec::with_capacity(num_keys);
        let mut acc = 0.0f64;
        for w in &weights {
            // Clamp the running sum: with millions of tiny weights the
            // accumulation can drift *above* 1.0 before the last interval,
            // and forcing only the final element back down would make the
            // array non-monotone — `partition_point`'s contract broken and
            // the overshot intervals assigned negative probability mass.
            acc = (acc + w / total).min(1.0);
            cumulative.push(acc);
        }
        // Drift-low tail guard: the final upper bound is 1.0 by definition,
        // so a draw in the last ulp below 1.0 still lands inside the array.
        *cumulative.last_mut().expect("num_keys > 0") = 1.0;

        // Random unique key per interval: XOR with a seed-derived salt then a
        // bijective multiplicative mix keeps keys unique over u32.
        let salt = (seed as u32) ^ ((seed >> 32) as u32);
        let keys = (0..num_keys as u32).map(|i| mix32(i ^ salt)).collect();

        Self {
            cumulative,
            keys,
            theta,
        }
    }

    /// The zipf factor this workload was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of distinct keys (intervals).
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// The unique key of interval `rank` (rank 0 = hottest key).
    pub fn key_of_rank(&self, rank: usize) -> Key {
        self.keys[rank]
    }

    /// Probability mass of interval `rank`.
    pub fn probability_of_rank(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        hi - lo
    }

    /// Draws one key: generate a uniform random in `[0, 1)` and binary-search
    /// the interval array (the paper's per-tuple procedure).
    #[inline]
    pub fn draw(&self, rng: &mut Rng) -> Key {
        let x: f64 = rng.next_f64();
        let idx = self.cumulative.partition_point(|&c| c <= x);
        // partition_point can return len() only if x >= 1.0, which
        // next_f64() excludes; clamp defensively anyway.
        self.keys[idx.min(self.keys.len() - 1)]
    }

    /// Generates a table of `num_tuples` tuples whose keys follow this
    /// distribution; payload `i` is the row id.
    pub fn generate_table(&self, num_tuples: usize, seed: u64) -> Relation {
        let mut rng = Rng::seed_from_u64(seed);
        let mut tuples = Vec::with_capacity(num_tuples);
        for i in 0..num_tuples {
            tuples.push(Tuple::new(self.draw(&mut rng), i as u32));
        }
        Relation::from_tuples(tuples)
    }

    /// Expected number of occurrences of the rank-`rank` key in a table of
    /// `num_tuples` tuples.
    pub fn expected_frequency(&self, rank: usize, num_tuples: usize) -> f64 {
        self.probability_of_rank(rank) * num_tuples as f64
    }

    /// Expected join output size when R and S each have `n` tuples drawn
    /// from this distribution: `n² · Σ p_i²`.
    pub fn expected_join_output(&self, n: usize) -> f64 {
        let sum_sq: f64 = (0..self.num_keys())
            .map(|r| {
                let p = self.probability_of_rank(r);
                p * p
            })
            .sum();
        (n as f64) * (n as f64) * sum_sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.5, 1.0] {
            let z = ZipfWorkload::new(1000, theta, 42);
            let sum: f64 = (0..1000).map(|r| z.probability_of_rank(r)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta={theta} sum={sum}");
        }
    }

    #[test]
    fn probabilities_are_monotone_nonincreasing() {
        let z = ZipfWorkload::new(500, 0.8, 7);
        for r in 1..500 {
            assert!(z.probability_of_rank(r) <= z.probability_of_rank(r - 1) + 1e-12);
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfWorkload::new(100, 0.0, 1);
        for r in 0..100 {
            assert!((z.probability_of_rank(r) - 0.01).abs() < 1e-9);
        }
    }

    #[test]
    fn keys_are_unique() {
        let z = ZipfWorkload::new(10_000, 1.0, 99);
        let mut seen = std::collections::HashSet::new();
        for r in 0..z.num_keys() {
            assert!(seen.insert(z.key_of_rank(r)));
        }
    }

    #[test]
    fn hottest_key_frequency_matches_harmonic_prediction() {
        // Paper §III: at zipf 1.0 with n keys the top key holds 1/H_n of the
        // mass. Empirically verify within sampling noise.
        let n_keys = 10_000;
        let n_tuples = 200_000;
        let z = ZipfWorkload::new(n_keys, 1.0, 5);
        let table = z.generate_table(n_tuples, 6);
        let mut freq: HashMap<Key, usize> = HashMap::new();
        for t in table.iter() {
            *freq.entry(t.key).or_default() += 1;
        }
        let top = *freq.get(&z.key_of_rank(0)).unwrap_or(&0) as f64;
        let expected = z.expected_frequency(0, n_tuples);
        assert!(
            (top - expected).abs() < expected * 0.1,
            "top key count {top} vs expected {expected}"
        );
    }

    #[test]
    fn generate_table_is_deterministic_per_seed() {
        let z = ZipfWorkload::new(100, 0.9, 3);
        let a = z.generate_table(1000, 11);
        let b = z.generate_table(1000, 11);
        let c = z.generate_table(1000, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tables_share_key_universe() {
        let z = ZipfWorkload::new(64, 1.0, 21);
        let r = z.generate_table(512, 1);
        let s = z.generate_table(512, 2);
        let universe: std::collections::HashSet<Key> =
            (0..z.num_keys()).map(|i| z.key_of_rank(i)).collect();
        assert!(r.iter().all(|t| universe.contains(&t.key)));
        assert!(s.iter().all(|t| universe.contains(&t.key)));
    }

    #[test]
    fn expected_join_output_uniform_case() {
        // Uniform over k keys: expected output = n²/k.
        let z = ZipfWorkload::new(100, 0.0, 1);
        let expected = z.expected_join_output(1000);
        assert!((expected - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn payloads_are_row_ids() {
        let z = ZipfWorkload::new(10, 0.5, 4);
        let t = z.generate_table(100, 9);
        for (i, tup) in t.iter().enumerate() {
            assert_eq!(tup.payload, i as u32);
        }
    }

    #[test]
    fn single_key_domain() {
        let z = ZipfWorkload::new(1, 1.0, 0);
        assert!((z.probability_of_rank(0) - 1.0).abs() < 1e-12);
        let t = z.generate_table(100, 5);
        let k = z.key_of_rank(0);
        assert!(t.iter().all(|tup| tup.key == k));
        assert_eq!(z.expected_join_output(100) as u64, 10_000);
    }

    #[test]
    fn cumulative_drift_leaves_no_negative_mass() {
        // Regression: with hundreds of thousands of tiny weights the running
        // float sum drifts off 1.0 in either direction. Drift-high used to
        // leave the array non-monotone once the last element was forced back
        // to 1.0 — observable as negative probability mass on the tail
        // ranks; drift-low used to leave the final upper bound below 1.0 so
        // a draw in the last ulp could fall past the array.
        for theta in [0.25, 0.75, 0.99, 1.0, 1.5, 2.0] {
            let n = 300_000;
            let z = ZipfWorkload::new(n, theta, 17);
            let mut sum = 0.0f64;
            for r in 0..n {
                let p = z.probability_of_rank(r);
                assert!(p >= 0.0, "theta={theta} rank={r} negative mass {p}");
                sum += p;
            }
            // The per-rank masses telescope over the cumulative array, whose
            // last element is pinned at exactly 1.0.
            assert!((sum - 1.0).abs() < 1e-9, "theta={theta} sum={sum}");
        }
    }

    #[test]
    fn draws_always_land_in_the_key_array() {
        // Every draw must map to a real interval even at the distribution's
        // tail; exercised across skew extremes including θ = 2.
        for theta in [0.0, 1.0, 2.0] {
            let z = ZipfWorkload::new(10_000, theta, 23);
            let universe: std::collections::HashSet<Key> =
                (0..z.num_keys()).map(|i| z.key_of_rank(i)).collect();
            let mut rng = Rng::seed_from_u64(29);
            for _ in 0..20_000 {
                assert!(universe.contains(&z.draw(&mut rng)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_rejected() {
        let _ = ZipfWorkload::new(0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_theta_rejected() {
        let _ = ZipfWorkload::new(10, -0.5, 0);
    }
}
