//! # skewjoin-datagen
//!
//! Workload generators for the skewjoin workspace.
//!
//! The centerpiece is [`zipf::ZipfWorkload`], a literal implementation of the
//! paper's §V-A generator: an interval array whose lengths are zipf
//! probabilities, one random unique key per interval, and per-tuple binary
//! search of uniform randoms into the intervals. Table R and table S are
//! drawn from the *same* interval/key arrays, which is how the paper models
//! "highly skewed" joins where the same keys are hot on both sides.
//!
//! Also provided: uniform and primary/foreign-key generators
//! ([`uniform`]) and a power-law graph edge generator ([`graph`]) matching
//! the paper's motivating workload (vertex degrees of real-world graphs
//! follow power laws, so graph joins see highly skewed keys).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod graph;
pub mod io;
pub mod rng;
pub mod uniform;
pub mod workload;
pub mod zipf;

pub use rng::Rng;
pub use workload::{PaperWorkload, WorkloadSpec};
pub use zipf::ZipfWorkload;
