//! The paper's end-to-end workload: two equal-sized tables over a shared
//! zipf key distribution (§III and §V-A).

use skewjoin_common::Relation;

use crate::zipf::ZipfWorkload;

/// Declarative description of one experimental data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Tuples per table (the paper uses 32 M; 560 M for the scale-up run).
    pub tuples: usize,
    /// Number of distinct keys; the paper's generator uses one interval per
    /// potential key, i.e. `tuples` intervals.
    pub num_keys: usize,
    /// Zipf factor, 0.0–1.0 in the evaluation.
    pub zipf_factor: f64,
    /// Base RNG seed; R and S derive distinct streams from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's configuration for a given scale and skew: `num_keys`
    /// equals the table size (§III: at zipf 1.0 and 32 M tuples the top key
    /// appears ≈1.79 M times, which is `32 M / H_{32M}` — one interval per
    /// tuple slot).
    pub fn paper(tuples: usize, zipf_factor: f64, seed: u64) -> Self {
        Self {
            tuples,
            // One interval per tuple slot; a minimum of one key keeps the
            // degenerate empty workload constructible (empty tables over a
            // one-key distribution).
            num_keys: tuples.max(1),
            zipf_factor,
            seed,
        }
    }
}

/// A fully generated R ⋈ S workload, retaining the distribution for
/// analytical expectations.
#[derive(Debug, Clone)]
pub struct PaperWorkload {
    /// Build-side table.
    pub r: Relation,
    /// Probe-side table.
    pub s: Relation,
    /// The shared key distribution both tables were drawn from.
    pub distribution: ZipfWorkload,
    /// The spec this workload was generated from.
    pub spec: WorkloadSpec,
}

impl PaperWorkload {
    /// Generates both tables from the *same* interval/key arrays (the
    /// paper's "highly skewed" model).
    pub fn generate(spec: WorkloadSpec) -> Self {
        let distribution = ZipfWorkload::new(spec.num_keys, spec.zipf_factor, spec.seed);
        let r = distribution.generate_table(spec.tuples, spec.seed.wrapping_add(0x52));
        let s = distribution.generate_table(spec.tuples, spec.seed.wrapping_add(0x53));
        Self {
            r,
            s,
            distribution,
            spec,
        }
    }

    /// Analytic expectation of the join output size for this workload.
    pub fn expected_join_output(&self) -> f64 {
        self.distribution.expected_join_output(self.spec.tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_workload_is_constructible() {
        let w = PaperWorkload::generate(WorkloadSpec::paper(0, 1.0, 1));
        assert!(w.r.is_empty());
        assert!(w.s.is_empty());
        assert_eq!(w.expected_join_output(), 0.0);
    }

    #[test]
    fn generates_equal_sized_tables() {
        let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 12, 0.7, 42));
        assert_eq!(w.r.len(), 1 << 12);
        assert_eq!(w.s.len(), 1 << 12);
        assert_ne!(w.r, w.s, "R and S must be independent draws");
    }

    #[test]
    fn r_and_s_share_hot_keys() {
        // At zipf 1.0 the hottest key must be hot in both tables.
        let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 14, 1.0, 7));
        let top = w.distribution.key_of_rank(0);
        let count = |rel: &Relation| rel.iter().filter(|t| t.key == top).count();
        let (cr, cs) = (count(&w.r), count(&w.s));
        let expected = w.distribution.expected_frequency(0, w.spec.tuples);
        assert!(cr as f64 > expected * 0.7, "R top count {cr} vs {expected}");
        assert!(cs as f64 > expected * 0.7, "S top count {cs} vs {expected}");
    }

    #[test]
    fn expected_output_close_to_actual() {
        let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 12, 0.9, 3));
        let mut r_freq: HashMap<u32, u64> = HashMap::new();
        for t in w.r.iter() {
            *r_freq.entry(t.key).or_default() += 1;
        }
        let actual: u64 =
            w.s.iter()
                .map(|t| r_freq.get(&t.key).copied().unwrap_or(0))
                .sum();
        let expected = w.expected_join_output();
        // The realized output is a random variable; expect same order of
        // magnitude at this scale.
        assert!(
            actual as f64 > expected * 0.3 && (actual as f64) < expected * 3.0,
            "actual {actual} vs expected {expected}"
        );
    }
}
