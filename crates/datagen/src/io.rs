//! Relation import/export: CSV for interchange, a compact binary format
//! for fast reload of generated workloads.
//!
//! The binary format is a 16-byte header (`magic`, version, tuple count)
//! followed by little-endian `(key, payload)` pairs — 8 bytes per tuple,
//! the same in-memory layout the joins use, so loading is a single
//! buffered read.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use skewjoin_common::scratch::ScratchFile;
use skewjoin_common::{Relation, Tuple};

/// Magic bytes identifying the binary relation format.
pub const MAGIC: &[u8; 4] = b"SKJR";
/// Current binary format version.
pub const VERSION: u32 = 1;

/// Errors from relation I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid relation in the expected format.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serializes a relation into the binary format.
pub fn to_bytes(relation: &Relation) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + relation.len() * 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(relation.len() as u64).to_le_bytes());
    for t in relation.iter() {
        buf.extend_from_slice(&t.key.to_le_bytes());
        buf.extend_from_slice(&t.payload.to_le_bytes());
    }
    buf
}

fn read_u32_le(data: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ])
}

/// Deserializes a relation from the binary format.
pub fn from_bytes(data: &[u8]) -> Result<Relation, IoError> {
    if data.len() < 16 {
        return Err(IoError::Format("truncated header".into()));
    }
    let magic = &data[0..4];
    if magic != MAGIC {
        return Err(IoError::Format(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = read_u32_le(data, 4);
    if version != VERSION {
        return Err(IoError::Format(format!(
            "unsupported version {version} (this build reads {VERSION})"
        )));
    }
    let count = (read_u32_le(data, 8) as u64 | ((read_u32_le(data, 12) as u64) << 32)) as usize;
    let body = &data[16..];
    // A hostile header can claim a count whose byte size overflows usize.
    let expected_bytes = count
        .checked_mul(8)
        .ok_or_else(|| IoError::Format(format!("implausible tuple count {count}")))?;
    if body.len() != expected_bytes {
        return Err(IoError::Format(format!(
            "expected {expected_bytes} tuple bytes, found {}",
            body.len()
        )));
    }
    let mut tuples = Vec::with_capacity(count);
    for i in 0..count {
        let key = read_u32_le(body, i * 8);
        let payload = read_u32_le(body, i * 8 + 4);
        tuples.push(Tuple::new(key, payload));
    }
    Ok(Relation::from_tuples(tuples))
}

/// Writes through a uniquely named sibling that is renamed over `path`
/// only after a successful flush + sync. The sibling is an RAII scratch
/// guard, so every failure path — an I/O error, a panic, even an abort
/// between runs — leaves the old `path` intact and no partial file behind
/// (the rename makes the guard's drop-time removal a no-op on success).
fn write_atomic(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> Result<(), IoError>,
) -> Result<(), IoError> {
    // The sibling must live in the destination directory: a rename across
    // filesystems (e.g. from a tmpfs scratch default) would not be atomic.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp = ScratchFile::reserve(Some(parent), ".skewjoin-io-tmp", 0)?;
    let mut out = BufWriter::new(File::create(tmp.path())?);
    write(&mut out)?;
    out.flush()?;
    out.get_ref().sync_all()?;
    drop(out);
    std::fs::rename(tmp.path(), path)?;
    Ok(())
}

/// Writes a relation to `path` in the binary format. The write is atomic:
/// a crash mid-write can never leave a truncated or corrupt file at `path`.
pub fn write_binary(relation: &Relation, path: &Path) -> Result<(), IoError> {
    write_atomic(path, |out| {
        out.write_all(&to_bytes(relation))?;
        Ok(())
    })
}

/// Reads a relation from a binary file written by [`write_binary`].
pub fn read_binary(path: &Path) -> Result<Relation, IoError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    from_bytes(&data)
}

/// Writes a relation as a two-column `key,payload` CSV with a header row.
/// Atomic like [`write_binary`].
pub fn write_csv(relation: &Relation, path: &Path) -> Result<(), IoError> {
    write_atomic(path, |out| {
        writeln!(out, "key,payload")?;
        for t in relation.iter() {
            writeln!(out, "{},{}", t.key, t.payload)?;
        }
        Ok(())
    })
}

/// Reads a relation from a CSV file.
///
/// The first row may be a header (detected by a non-numeric first field).
/// Each data row needs at least `key_col + 1` comma-separated fields; the
/// payload comes from `payload_col`, or defaults to the row index if the
/// column is absent.
pub fn read_csv(
    path: &Path,
    key_col: usize,
    payload_col: Option<usize>,
) -> Result<Relation, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut tuples = Vec::new();
    let mut line_no = 0usize;
    let mut header_candidate = true;
    for line in reader.lines() {
        let line = line?;
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let key_field = *fields.get(key_col).ok_or_else(|| {
            IoError::Format(format!("line {line_no}: missing key column {key_col}"))
        })?;
        let first_content_line = header_candidate;
        header_candidate = false;
        let key: u32 = match key_field.parse() {
            Ok(k) => k,
            // A non-numeric key in the first non-empty line is a header row.
            Err(_) if first_content_line => continue,
            Err(e) => {
                return Err(IoError::Format(format!(
                    "line {line_no}: bad key {key_field:?}: {e}"
                )))
            }
        };
        let payload = match payload_col.and_then(|col| fields.get(col)) {
            Some(f) => f
                .parse()
                .map_err(|e| IoError::Format(format!("line {line_no}: bad payload {f:?}: {e}")))?,
            None => tuples.len() as u32,
        };
        tuples.push(Tuple::new(key, payload));
    }
    Ok(Relation::from_tuples(tuples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skewjoin-io-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_relation() -> Relation {
        Relation::from_tuples(vec![
            Tuple::new(7, 0),
            Tuple::new(42, 1),
            Tuple::new(u32::MAX, 2),
        ])
    }

    #[test]
    fn binary_roundtrip_in_memory() {
        let rel = sample_relation();
        let bytes = to_bytes(&rel);
        assert_eq!(bytes.len(), 16 + 24);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn binary_roundtrip_on_disk() {
        let rel = sample_relation();
        let path = temp_path("bin");
        write_binary(&rel, &path).unwrap();
        let back = read_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, rel);
    }

    #[test]
    fn empty_relation_roundtrip() {
        let rel = Relation::new();
        let back = from_bytes(&to_bytes(&rel)).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(from_bytes(b"short").is_err());
        assert!(from_bytes(b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00").is_err());
        // Valid header claiming one tuple but no body.
        let mut bad = to_bytes(&sample_relation()).to_vec();
        bad.truncate(20);
        assert!(from_bytes(&bad).is_err());
        // Wrong version.
        let mut wrong_ver = to_bytes(&Relation::new()).to_vec();
        wrong_ver[4] = 99;
        assert!(matches!(from_bytes(&wrong_ver), Err(IoError::Format(_))));
    }

    #[test]
    fn atomic_write_failure_preserves_the_target_and_leaks_nothing() {
        let dir = std::env::temp_dir().join(format!(
            "skewjoin-io-atomic-{}-{:p}",
            std::process::id(),
            &MAGIC
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("rel.bin");
        write_binary(&sample_relation(), &target).unwrap();

        // A writer that emits partial bytes and then fails: the target must
        // keep its old contents and the sibling must be cleaned up.
        let err = write_atomic(&target, |out| {
            out.write_all(b"partial")?;
            Err(IoError::Format("simulated failure".into()))
        });
        assert!(err.is_err());
        assert_eq!(read_binary(&target).unwrap(), sample_relation());
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(entries.len(), 1, "leaked scratch sibling: {entries:?}");
    }

    #[test]
    fn csv_roundtrip_with_header() {
        let rel = sample_relation();
        let path = temp_path("csv");
        write_csv(&rel, &path).unwrap();
        let back = read_csv(&path, 0, Some(1)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, rel);
    }

    #[test]
    fn csv_default_payload_is_row_index() {
        let path = temp_path("csv2");
        std::fs::write(&path, "key\n5\n6\n5\n").unwrap();
        let rel = read_csv(&path, 0, None).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel[0], Tuple::new(5, 0));
        assert_eq!(rel[2], Tuple::new(5, 2));
    }

    #[test]
    fn csv_header_after_blank_line_is_skipped() {
        let path = temp_path("csv4");
        std::fs::write(&path, "\n\nkey,payload\n5,9\n").unwrap();
        let rel = read_csv(&path, 0, Some(1)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0], Tuple::new(5, 9));
    }

    #[test]
    fn csv_reports_bad_rows() {
        let path = temp_path("csv3");
        std::fs::write(&path, "key\n5\nnot-a-number\n").unwrap();
        let err = read_csv(&path, 0, None).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("line 3"));
    }
}
