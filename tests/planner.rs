#![allow(clippy::field_reassign_with_default)]

//! End-to-end planner behaviour: algorithm selection tracks the sampled
//! skew, and executed plans agree with direct runs on both devices.

use skewjoin::prelude::*;

#[test]
fn planner_tracks_skew_level() {
    let opts = PlannerOptions::default();
    let skewed = PaperWorkload::generate(WorkloadSpec::paper(1 << 14, 1.0, 1));
    let uniform = PaperWorkload::generate(WorkloadSpec::paper(1 << 14, 0.0, 2));

    let p_skew = JoinPlan::plan(&skewed.r, &skewed.s, &opts);
    assert_eq!(p_skew.algorithm, Algorithm::Cpu(CpuAlgorithm::Csh));
    assert!(p_skew.skewed_keys_estimated > 0);

    let p_flat = JoinPlan::plan(&uniform.r, &uniform.s, &opts);
    assert_eq!(p_flat.algorithm, Algorithm::Cpu(CpuAlgorithm::Cbase));
}

#[test]
fn gpu_plan_executes_and_matches_cpu_plan() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 1.0, 3));

    let mut cpu_opts = PlannerOptions::default();
    cpu_opts.cpu = CpuJoinConfig::with_threads(2);
    let cpu_plan = JoinPlan::plan(&w.r, &w.s, &cpu_opts);
    let cpu_stats = cpu_plan
        .execute(&w.r, &w.s, &cpu_opts, SinkSpec::Count)
        .unwrap();

    let mut gpu_opts = PlannerOptions::default();
    gpu_opts.device = TargetDevice::Gpu;
    gpu_opts.gpu = GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        ..GpuJoinConfig::default()
    };
    let gpu_plan = JoinPlan::plan(&w.r, &w.s, &gpu_opts);
    assert_eq!(gpu_plan.algorithm, Algorithm::Gpu(GpuAlgorithm::Gsh));
    let gpu_stats = gpu_plan
        .execute(&w.r, &w.s, &gpu_opts, SinkSpec::Count)
        .unwrap();

    assert_eq!(cpu_stats.result_count, gpu_stats.result_count);
    assert_eq!(cpu_stats.checksum, gpu_stats.checksum);
}

#[test]
fn plan_reason_is_informative() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 14, 1.0, 5));
    let plan = JoinPlan::plan(&w.r, &w.s, &PlannerOptions::default());
    assert!(
        plan.reason.contains("skewed key"),
        "reason: {}",
        plan.reason
    );
}

#[test]
fn planned_csh_beats_planned_cbase_on_heavy_skew() {
    // Not a micro-benchmark — just a sanity check that the planner's choice
    // is directionally right at heavy skew and moderate size.
    let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 16, 1.0, 7));
    let cfg = JoinConfig::from(CpuJoinConfig::with_threads(4));
    let csh = skewjoin::run_join(
        Algorithm::Cpu(CpuAlgorithm::Csh),
        &w.r,
        &w.s,
        &cfg,
        SinkSpec::Count,
    )
    .unwrap();
    let cbase = skewjoin::run_join(
        Algorithm::Cpu(CpuAlgorithm::Cbase),
        &w.r,
        &w.s,
        &cfg,
        SinkSpec::Count,
    )
    .unwrap();
    assert_eq!(csh.result_count, cbase.result_count);
    assert!(
        csh.total_time() < cbase.total_time(),
        "CSH {:?} not faster than Cbase {:?} at zipf 1.0",
        csh.total_time(),
        cbase.total_time()
    );
}
