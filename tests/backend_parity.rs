//! Backend-parity matrix: the sim and host GPU backends must produce
//! identical join results.
//!
//! The host backend executes the same kernel code as the simulator but
//! performs no cycle accounting, which makes it a differential oracle for
//! the cost model's bookkeeping: any divergence means a kernel's *result*
//! depends on something only one backend does (a charge call with a side
//! effect, a block-order assumption, a shared-memory accounting bug).
//!
//! Every cell runs Gbase and GSH on both backends over a seed × size × zipf
//! matrix and asserts per-key result counts (not just totals) agree with
//! each other *and* with the trivially-correct `count_R(k) · count_S(k)`
//! ground truth.

use std::collections::BTreeMap;

use skewjoin::common::Key;
use skewjoin::datagen::{PaperWorkload, WorkloadSpec};
use skewjoin::gpu::{gbase_join, gsh_join, GpuBackendKind, GpuJoinConfig};
use skewjoin::GpuAlgorithm;
use skewjoin_integration::{
    first_divergence, gpu_config, merge_key_counts, reference_key_counts, CaseSpec, KeyCountSink,
};

struct ParityRun {
    counts: BTreeMap<Key, u64>,
    checksum: u64,
    cycles: u64,
}

fn run_backend(
    algo: GpuAlgorithm,
    r: &skewjoin::common::Relation,
    s: &skewjoin::common::Relation,
    base: &GpuJoinConfig,
    kind: GpuBackendKind,
) -> ParityRun {
    let cfg = GpuJoinConfig {
        backend: kind,
        ..base.clone()
    };
    let make = |_slot: usize| KeyCountSink::new();
    let outcome = match algo {
        GpuAlgorithm::Gbase => gbase_join(r, s, &cfg, make),
        GpuAlgorithm::Gsh => gsh_join(r, s, &cfg, make),
    }
    .unwrap_or_else(|e| panic!("{} on {kind} failed: {e}", algo.name()));
    ParityRun {
        counts: merge_key_counts(&outcome.sinks),
        checksum: outcome.stats.checksum,
        cycles: outcome.stats.simulated_cycles,
    }
}

#[test]
fn sim_and_host_backends_agree_across_the_matrix() {
    for &seed in &[11u64, 23] {
        for &size in &[512usize, 4096] {
            for &zipf in &[0.0f64, 1.0, 1.75] {
                let w = PaperWorkload::generate(WorkloadSpec::paper(size, zipf, seed));
                let spec = CaseSpec {
                    seed,
                    size,
                    zipf,
                    threads: 2,
                };
                // The diffcheck-scaled config: shrunken shared-memory table
                // so the GSH skew machinery runs at this scale.
                let base = gpu_config(spec);
                let expected = reference_key_counts(&w.r, &w.s);
                for algo in GpuAlgorithm::ALL {
                    let cell = format!("{} seed={seed} size={size} zipf={zipf}", algo.name());
                    let sim = run_backend(algo, &w.r, &w.s, &base, GpuBackendKind::Sim);
                    let host = run_backend(algo, &w.r, &w.s, &base, GpuBackendKind::Host);
                    if let Some(m) = first_divergence(&sim.counts, &host.counts) {
                        panic!("{cell}: sim/host diverge at key {}: {m:?}", m.key);
                    }
                    if let Some(m) = first_divergence(&expected, &host.counts) {
                        panic!("{cell}: host diverges from ground truth: {m:?}");
                    }
                    assert_eq!(sim.checksum, host.checksum, "{cell}: checksum");
                    // Only the simulator models time; host execution must
                    // report no cycles rather than a fabricated number.
                    assert!(
                        sim.cycles > 0 || size == 0,
                        "{cell}: sim reported no cycles"
                    );
                    assert_eq!(host.cycles, 0, "{cell}: host backend charged cycles");
                }
            }
        }
    }
}

#[test]
fn host_backend_handles_degenerate_inputs() {
    let empty = skewjoin::common::Relation::from_keys(&[]);
    let one = skewjoin::common::Relation::from_keys(&[42]);
    let base = GpuJoinConfig::default();
    for algo in GpuAlgorithm::ALL {
        for (r, s) in [
            (&empty, &empty),
            (&empty, &one),
            (&one, &empty),
            (&one, &one),
        ] {
            let sim = run_backend(algo, r, s, &base, GpuBackendKind::Sim);
            let host = run_backend(algo, r, s, &base, GpuBackendKind::Host);
            assert_eq!(sim.counts, host.counts, "{}", algo.name());
            assert_eq!(sim.checksum, host.checksum, "{}", algo.name());
        }
    }
}
