//! End-to-end tests of the `skewjoind` serving layer: the acceptance soak
//! (concurrent mixed CPU/GPU burst under a tight budget), the service-level
//! chaos cells, and cross-layer behaviors (fairness under a flooding
//! client, deadline enforcement through the wire).
//!
//! The failpoint registry is process-global, so the fault-armed tests
//! serialize behind one mutex (same discipline as `fault_recovery.rs`).

use std::process::Command;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use skewjoin::planner::TargetDevice;
use skewjoin::{Algorithm, CpuAlgorithm};
use skewjoin_integration::chaos::CellOutcome;
use skewjoin_integration::service_chaos::{run_service_cell, SERVICE_FAILPOINT_SITES};
use skewjoin_service::{
    protocol, AlgoChoice, JoinRequest, JoinService, Outcome, Priority, ServiceConfig, Ticket,
};

/// Serializes fault-armed tests: armed failpoints are visible process-wide.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn small_service(workers: usize, queue: usize) -> std::sync::Arc<JoinService> {
    let mut cfg = ServiceConfig {
        workers,
        queue_capacity: queue,
        ..ServiceConfig::default()
    };
    cfg.join_config.cpu.threads = 2;
    JoinService::start(cfg)
}

/// The acceptance soak, run exactly as CI runs it: ≥64 concurrent mixed
/// CPU/GPU requests through the `soak` harness binary, which itself asserts
/// queuing under memory pressure, ≥1 governor-ladder engagement,
/// diffcheck-correctness of every completion, peak ≤ budget, and exact
/// metrics reconciliation — any violation exits non-zero.
#[test]
fn soak_binary_upholds_the_serving_contract() {
    let output = Command::new(env!("CARGO_BIN_EXE_soak"))
        .args(["--requests", "64", "--tuples", "4096", "--seeds", "17"])
        .output()
        .expect("run soak binary");
    assert!(
        output.status.success(),
        "soak reported violations:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("contract holds"),
        "unexpected output: {stdout}"
    );
}

/// A flooding client cannot starve a light one: with one worker and a
/// hog that fills the queue first, the meek client's single request is
/// served after at most one hog request (lane rotation), not after all of
/// them.
#[test]
fn fair_queue_prevents_client_starvation_through_the_service() {
    let svc = small_service(1, 32);
    let csh = AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Csh));
    // Occupy the single worker so subsequent submissions queue.
    let plug = svc.submit(JoinRequest::generate("plug", csh, 1 << 15, 1.0, 1));
    let hog_tickets: Vec<Ticket> = (0..6)
        .map(|i| svc.submit(JoinRequest::generate("hog", csh, 8192, 0.75, 10 + i)))
        .collect();
    let meek = svc.submit(JoinRequest::generate("meek", csh, 8192, 0.75, 99));
    let meek_id = meek.id();
    assert!(
        hog_tickets.iter().all(|t| t.id() < meek_id),
        "meek must have been submitted last"
    );

    let _ = plug.wait();
    let meek_resp = meek.wait();
    assert!(
        matches!(meek_resp.outcome, Outcome::Completed(_)),
        "meek's request must complete, got {:?}",
        meek_resp.outcome
    );
    // Rotation guarantee: when meek completed, at most one hog request can
    // have been dequeued *after* it was enqueued... observable as: not all
    // hogs are done before meek. Since all hogs were enqueued first, FIFO
    // would finish all six before meek; fair rotation must not.
    let hogs_done_before_meek = hog_tickets
        .iter()
        .filter(|t| t.wait_timeout(Duration::ZERO).is_some())
        .count();
    assert!(
        hogs_done_before_meek < 6,
        "all hog requests finished before the later-submitted meek request — no fairness"
    );
    for t in hog_tickets {
        let _ = t.wait();
    }
    svc.shutdown();
}

/// Priorities override arrival order across bands: a High request submitted
/// after a backlog of Low requests is dequeued first.
#[test]
fn high_priority_jumps_the_low_band() {
    let svc = small_service(1, 32);
    let csh = AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Csh));
    let plug = svc.submit(JoinRequest::generate("plug", csh, 1 << 15, 1.0, 1));
    let low_tickets: Vec<Ticket> = (0..4)
        .map(|i| {
            let mut req = JoinRequest::generate("low", csh, 8192, 0.5, 20 + i);
            req.priority = Priority::Low;
            svc.submit(req)
        })
        .collect();
    let mut urgent = JoinRequest::generate("urgent", csh, 4096, 0.5, 77);
    urgent.priority = Priority::High;
    let urgent_ticket = svc.submit(urgent);

    let _ = plug.wait();
    let urgent_resp = urgent_ticket.wait();
    assert!(matches!(urgent_resp.outcome, Outcome::Completed(_)));
    let lows_done = low_tickets
        .iter()
        .filter(|t| t.wait_timeout(Duration::ZERO).is_some())
        .count();
    assert!(
        lows_done < 4,
        "the urgent request should not have waited out the whole low band"
    );
    for t in low_tickets {
        let _ = t.wait();
    }
    svc.shutdown();
}

/// Deadline + cancellation through the full stack: a request with an
/// already-expired deadline resolves as `Cancelled` at a named phase
/// boundary, and the books still balance.
#[test]
fn expired_deadline_cancels_with_a_named_phase() {
    let svc = small_service(2, 8);
    let mut req = JoinRequest::generate(
        "t",
        AlgoChoice::Fixed(Algorithm::Cpu(CpuAlgorithm::Cbase)),
        1 << 14,
        0.9,
        5,
    );
    req.deadline = Some(Duration::ZERO);
    let resp = svc.submit(req).wait();
    match resp.outcome {
        Outcome::Cancelled { phase } => assert!(!phase.is_empty(), "phase must be named"),
        other => panic!("expected cancellation, got {other:?}"),
    }
    svc.shutdown();
    let m = svc.metrics();
    assert_eq!(
        m.counter_value("service.submitted"),
        m.counter_value("service.admitted") + m.counter_value("service.rejected")
    );
    assert_eq!(
        m.counter_value("service.admitted"),
        m.counter_value("service.completed")
            + m.counter_value("service.cancelled")
            + m.counter_value("service.failed")
    );
}

/// TCP front end end-to-end: an Auto request planned server-side completes
/// over the wire, and the metrics op reflects it.
#[test]
fn tcp_auto_request_round_trips_with_metrics() {
    let svc = small_service(2, 8);
    let server = protocol::serve(std::sync::Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let mut client = protocol::Client::connect(server.addr()).expect("connect");
    let req = JoinRequest::generate("wire", AlgoChoice::Auto(TargetDevice::Cpu), 4096, 1.25, 13);
    let resp = client.join(&req).expect("join over TCP");
    match resp.outcome {
        Outcome::Completed(summary) => assert!(summary.result_count > 0),
        other => panic!("expected completion, got {other:?}"),
    }
    let snapshot = client.metrics().expect("metrics over TCP");
    let completed = snapshot
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("service.completed"))
        .and_then(skewjoin::common::json::Json::as_u64);
    assert_eq!(
        completed,
        Some(1),
        "snapshot: {}",
        snapshot.to_string_pretty()
    );
    drop(client);
    server.stop();
    svc.shutdown();
}

/// A zero-length frame (a bare `00 00 00 00` prefix) is a legal length
/// with an empty body, which is not JSON: the server must answer with a
/// typed protocol-error response — not hang, not crash the accept loop.
#[test]
fn zero_length_frame_gets_a_typed_protocol_error() {
    use std::io::Write;
    let svc = small_service(1, 4);
    let server = protocol::serve(std::sync::Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(&[0, 0, 0, 0]).expect("send empty frame");
    let reply = protocol::read_frame(&mut stream).expect("typed reply frame");
    let resp = skewjoin_service::JoinResponse::from_json(&reply).expect("parseable response");
    assert_eq!(resp.id, 0, "protocol errors carry id 0");
    match resp.outcome {
        Outcome::Failed { error } => assert!(
            error.contains("protocol error"),
            "unexpected error text: {error}"
        ),
        other => panic!("expected a protocol-error failure, got {other:?}"),
    }
    drop(stream);
    server.stop();
    svc.shutdown();
}

/// A frame of *exactly* `MAX_FRAME_BYTES` sits on the accept side of the
/// limit (the cap is `>`): a valid join request padded to the boundary
/// with an unknown string member (the parser ignores unknown fields) must
/// be parsed and served like any other request.
#[test]
fn frame_of_exactly_max_bytes_is_served() {
    use std::io::Write;
    let svc = small_service(1, 4);
    let server = protocol::serve(std::sync::Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let req = JoinRequest::generate("edge", AlgoChoice::Auto(TargetDevice::Cpu), 1024, 0.75, 5);
    let base = req.to_json().to_string_pretty();
    // Splice a `"pad"` member into the object so the body lands on the
    // boundary byte-for-byte.
    let stripped = base.trim_end().strip_suffix('}').expect("object body");
    let frame_overhead = stripped.len() + ",\"pad\":\"\"}".len();
    let pad_len = protocol::MAX_FRAME_BYTES as usize - frame_overhead;
    let body = format!("{stripped},\"pad\":\"{}\"}}", "x".repeat(pad_len));
    assert_eq!(body.len(), protocol::MAX_FRAME_BYTES as usize);

    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    stream
        .write_all(&(protocol::MAX_FRAME_BYTES).to_be_bytes())
        .expect("prefix");
    stream.write_all(body.as_bytes()).expect("64 MiB body");
    let reply = protocol::read_frame(&mut stream).expect("reply frame");
    let resp = skewjoin_service::JoinResponse::from_json(&reply).expect("parseable response");
    match resp.outcome {
        Outcome::Completed(summary) => assert!(summary.result_count > 0),
        other => panic!("boundary-sized request should complete, got {other:?}"),
    }
    drop(stream);
    server.stop();
    svc.shutdown();
}

/// The service-level chaos cells, clean path: without armed failpoints the
/// burst completes correctly and reconciles.
#[test]
fn service_chaos_cell_is_clean_when_unarmed() {
    let _guard = lock();
    let outcome = run_service_cell(SERVICE_FAILPOINT_SITES[0], 21, Duration::from_secs(120));
    assert!(
        !outcome.is_violation(),
        "clean cell must not violate: {outcome:?}"
    );
}

/// With the feature on, armed admission/execution faults must surface as
/// typed outcomes — never hangs, wrong answers, or accounting drift.
#[cfg(feature = "fault-injection")]
#[test]
fn armed_service_failpoints_stay_typed_and_reconciled() {
    let _guard = lock();
    for site in SERVICE_FAILPOINT_SITES {
        for seed in [3u64, 9] {
            let outcome = run_service_cell(site, seed, Duration::from_secs(120));
            assert!(
                !outcome.is_violation(),
                "{site} seed {seed} violated the contract: {outcome:?}"
            );
            assert!(
                matches!(
                    outcome,
                    CellOutcome::Correct { .. } | CellOutcome::TypedError(_)
                ),
                "{site} seed {seed}: unexpected outcome {outcome:?}"
            );
        }
    }
}

// Keep the import used in the feature-off build too.
#[cfg(not(feature = "fault-injection"))]
#[test]
fn cell_outcome_classification_is_available() {
    assert!(!CellOutcome::Correct { degradations: 0 }.is_violation());
}
