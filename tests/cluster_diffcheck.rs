//! Distributed diffcheck: sharded cluster joins must reproduce single-node
//! ground truth per key, across a seed × zipf × shard-count matrix that
//! forces both skew-routing moves (build replication and probe
//! splitting), and must keep reproducing it after a shard dies.
//!
//! Ground truth is [`skewjoin_integration::reference_key_counts`] — the
//! count-product oracle that shares no code with any hash-join path under
//! test, on either side of the wire.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use skewjoin::common::{Key, Relation};
use skewjoin::datagen::{PaperWorkload, WorkloadSpec};
use skewjoin_cluster::{ClusterConfig, Coordinator};
use skewjoin_integration::reference_key_counts;
use skewjoin_service::{protocol, serve_shard, JoinService, ServerHandle, ServiceConfig};

/// Starts `n` in-process shard daemons on ephemeral ports.
fn shard_cluster(n: usize) -> (Vec<Arc<JoinService>>, Vec<ServerHandle>, Vec<String>) {
    let mut services = Vec::new();
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for slot in 0..n {
        let mut cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            ..ServiceConfig::default()
        };
        cfg.join_config.cpu.threads = 2;
        let service = JoinService::start(cfg);
        let handle = serve_shard(Arc::clone(&service), "127.0.0.1:0", Some(slot as u32))
            .expect("bind shard");
        addrs.push(handle.addr().to_string());
        services.push(service);
        handles.push(handle);
    }
    (services, handles, addrs)
}

fn coordinator_over(addrs: Vec<String>) -> Coordinator {
    let mut cfg = ClusterConfig::new(addrs);
    cfg.client_attempts = 2;
    cfg.client_backoff = Duration::from_millis(5);
    Coordinator::new(cfg).expect("coordinator")
}

fn assert_counts_equal(cell: &str, actual: &BTreeMap<Key, u64>, expected: &BTreeMap<Key, u64>) {
    if actual != expected {
        let mismatch = expected
            .iter()
            .find(|(k, v)| actual.get(k) != Some(v))
            .map(|(k, v)| format!("key {k}: expected {v}, got {:?}", actual.get(k)))
            .or_else(|| {
                actual
                    .iter()
                    .find(|(k, _)| !expected.contains_key(k))
                    .map(|(k, v)| format!("key {k}: spurious count {v}"))
            })
            .unwrap_or_else(|| "shape mismatch".into());
        panic!("{cell}: per-key divergence — {mismatch}");
    }
}

/// The matrix: seeds × zipf × shard counts. zipf 1.5 with ≥ 2 shards must
/// exercise replication and splitting; zipf 0 must not break cold-path
/// ownership routing; 1 shard is the degenerate cluster.
#[test]
fn sharded_matrix_matches_single_node_ground_truth() {
    let seeds = [11u64, 23];
    let zipfs = [0.0f64, 0.75, 1.5];
    let tuples = 2048;
    let mut saw_replication = false;
    let mut saw_probe_split = false;

    for shards in [1usize, 2, 4] {
        let (services, handles, addrs) = shard_cluster(shards);
        let coordinator = coordinator_over(addrs);
        for &seed in &seeds {
            for &zipf in &zipfs {
                let cell = format!("seed {seed} × zipf {zipf} × {shards} shard(s)");
                let w = PaperWorkload::generate(WorkloadSpec::paper(tuples, zipf, seed));
                let expected = reference_key_counts(&w.r, &w.s);
                let out = coordinator
                    .join(&w.r, &w.s)
                    .unwrap_or_else(|e| panic!("{cell}: {e}"));
                assert_counts_equal(&cell, &out.key_counts, &expected);
                let expected_total: u64 = expected.values().sum();
                assert_eq!(out.result_count, expected_total, "{cell}: total");
                assert_eq!(out.dead_shards, 0, "{cell}: no shard should die");
                if shards >= 2 {
                    saw_replication |= out.routing.replicated_build_copies > 0;
                    saw_probe_split |= out.routing.split_probe_tuples > 0;
                }
            }
        }
        for h in handles {
            h.stop();
        }
        for s in services {
            s.shutdown();
        }
    }
    assert!(
        saw_replication,
        "no matrix cell exercised build replication"
    );
    assert!(saw_probe_split, "no matrix cell exercised probe splitting");
}

/// Checksums are order-independent wrapping sums, so the merged cluster
/// checksum must equal the single-node checksum bit-for-bit.
#[test]
fn cluster_checksum_matches_single_node() {
    let (services, handles, addrs) = shard_cluster(3);
    let coordinator = coordinator_over(addrs);
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 1.0, 47));
    let out = coordinator.join(&w.r, &w.s).expect("cluster join");

    let mut cfg = skewjoin::JoinConfig::default();
    cfg.cpu.threads = 2;
    let single = skewjoin::run_join(
        skewjoin::Algorithm::Cpu(skewjoin::CpuAlgorithm::Csh),
        &w.r,
        &w.s,
        &cfg,
        skewjoin::common::SinkSpec::Count,
    )
    .expect("single-node join");
    assert_eq!(out.result_count, single.result_count);
    assert_eq!(out.checksum, single.checksum);

    for h in handles {
        h.stop();
    }
    for s in services {
        s.shutdown();
    }
}

/// A shard killed between joins: subsequent joins re-route its share of
/// the work to the survivors and still match ground truth exactly.
#[test]
fn dead_shard_reroutes_work_to_survivors() {
    let (mut services, mut handles, addrs) = shard_cluster(3);
    let coordinator = coordinator_over(addrs);

    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 1.2, 31));
    let expected = reference_key_counts(&w.r, &w.s);

    // Healthy cluster first.
    let healthy = coordinator.join(&w.r, &w.s).expect("healthy join");
    assert_counts_equal("healthy 3-shard", &healthy.key_counts, &expected);
    assert_eq!(healthy.dead_shards, 0);

    // Deterministic kill between joins: stop shard 2's listener and
    // service outright.
    handles.remove(2).stop();
    services.remove(2).shutdown();

    let degraded = coordinator
        .join(&w.r, &w.s)
        .expect("join must survive a dead shard");
    assert_counts_equal("degraded 2-of-3", &degraded.key_counts, &expected);
    assert_eq!(degraded.result_count, healthy.result_count);
    assert_eq!(degraded.checksum, healthy.checksum);
    assert!(degraded.dead_shards >= 1, "the dead shard went unnoticed");
    assert_eq!(
        degraded.trace.get("cluster", "dead_shards"),
        Some(degraded.dead_shards as u64)
    );

    for h in handles {
        h.stop();
    }
    for s in services {
        s.shutdown();
    }
}

/// A shard that dies *mid-task* — the connection drops after the task was
/// sent — forces the requeue/reassignment path: the task re-routes to a
/// survivor and the join still matches ground truth, with the
/// reassignment visible in the dispatch counters.
#[test]
fn mid_task_connection_loss_reassigns_the_task() {
    // A saboteur shard: answers the ping hello, then drops the connection
    // on every shard_join without replying.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind saboteur");
    let saboteur_addr = listener.local_addr().unwrap().to_string();
    let saboteur = std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { break };
            while let Ok(frame) = protocol::read_frame(&mut stream) {
                use skewjoin::common::json::Json;
                let op = frame.get("op").and_then(Json::as_str).unwrap_or("");
                if op == "ping" {
                    let reply = Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        (
                            "protocol_version",
                            Json::from_u64(u64::from(protocol::PROTOCOL_VERSION)),
                        ),
                    ]);
                    if protocol::write_frame(&mut stream, &reply).is_err() {
                        break;
                    }
                } else {
                    break; // drop the connection mid-task
                }
            }
        }
    });

    let (services, handles, mut addrs) = shard_cluster(2);
    addrs.push(saboteur_addr);
    let coordinator = coordinator_over(addrs);

    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 1.2, 53));
    let expected = reference_key_counts(&w.r, &w.s);
    let out = coordinator
        .join(&w.r, &w.s)
        .expect("join must survive a mid-task connection loss");
    assert_counts_equal("2 real + 1 saboteur", &out.key_counts, &expected);
    assert!(
        out.reassigned >= 1,
        "the saboteur's task was never reassigned (reassigned = {})",
        out.reassigned
    );
    assert!(out.dead_shards >= 1, "the saboteur was not declared dead");
    assert_eq!(out.trace.get("cluster", "reassigned"), Some(out.reassigned));

    for h in handles {
        h.stop();
    }
    for s in services {
        s.shutdown();
    }
    // The saboteur thread exits when its listener errors on drop — force
    // it by connecting once more after the sockets close.
    drop(saboteur); // detach: the thread parks in accept and the process ends anyway
}

/// Misrouted work is rejected typed by the shard, not silently joined:
/// send a slice to the wrong slot on purpose.
#[test]
fn shards_reject_foreign_slices() {
    let (services, handles, addrs) = shard_cluster(2);
    let mut client = skewjoin_service::Client::connect(addrs[0].as_str()).expect("connect");
    // All keys, restricted to slot 0 of 2 with no hot keys: at least one
    // key must belong to slot 1, so the shard must refuse.
    let r = Relation::from_keys(&(0..64).collect::<Vec<_>>());
    let s = Relation::from_keys(&(0..64).collect::<Vec<_>>());
    let mut req = skewjoin_service::JoinRequest::inline(
        "diffcheck",
        skewjoin_service::AlgoChoice::parse("cbase").unwrap(),
        Arc::new(r),
        Arc::new(s),
    );
    req.shard = Some(skewjoin::ShardPartition {
        slot: 0,
        shards: 2,
        hot_keys: vec![],
    });
    let resp = client.shard_join(&req).expect("transport");
    match resp.outcome {
        skewjoin_service::Outcome::Failed { error } => {
            assert!(error.contains("misrouting"), "{error}");
        }
        other => panic!("expected a typed misrouting failure, got {other:?}"),
    }
    drop(client);
    for h in handles {
        h.stop();
    }
    for s in services {
        s.shutdown();
    }
}
