//! Large-scale stress tests — `#[ignore]`d by default (minutes of runtime);
//! run with `cargo test --release -p skewjoin-integration --test stress -- --ignored`.

use skewjoin::prelude::*;

/// 2M-tuple tables at zipf 0.9: all CPU algorithms agree and CSH leads.
#[test]
#[ignore = "minutes of runtime; run explicitly with --ignored"]
fn cpu_agreement_at_2m_tuples() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 21, 0.9, 42));
    let cfg = JoinConfig::from(CpuJoinConfig::sized_for(1 << 21, 2048));
    let cbase = skewjoin::run_join(
        Algorithm::Cpu(CpuAlgorithm::Cbase),
        &w.r,
        &w.s,
        &cfg,
        SinkSpec::default(),
    )
    .unwrap();
    let csh = skewjoin::run_join(
        Algorithm::Cpu(CpuAlgorithm::Csh),
        &w.r,
        &w.s,
        &cfg,
        SinkSpec::default(),
    )
    .unwrap();
    assert_eq!(cbase.result_count, csh.result_count);
    assert!(
        csh.total_time() < cbase.total_time(),
        "CSH {:?} vs Cbase {:?}",
        csh.total_time(),
        cbase.total_time()
    );
}

/// The work-stealing scheduler must not change results with the worker
/// count: every CPU algorithm yields the same count and checksum with one
/// thread (no steals possible) as with eight (steals near-certain on the
/// skewed task tree). Small enough to run in the default test pass.
#[test]
fn scheduler_thread_count_invariance() {
    for &zipf in &[1.0, 1.25] {
        let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 14, zipf, 7));
        for algo in CpuAlgorithm::ALL {
            let run = |threads: usize| {
                let cfg = JoinConfig::from(CpuJoinConfig::with_threads(threads));
                skewjoin::run_join(algo.into(), &w.r, &w.s, &cfg, SinkSpec::Count).unwrap()
            };
            let solo = run(1);
            let wide = run(8);
            assert_eq!(
                solo.result_count, wide.result_count,
                "{algo} zipf={zipf}: count changed with thread count"
            );
            assert_eq!(
                solo.checksum, wide.checksum,
                "{algo} zipf={zipf}: checksum changed with thread count"
            );
        }
    }
}

/// 512k-tuple tables on the simulated A100 at zipf 1.0: GSH ≥ 5× Gbase.
#[test]
#[ignore = "minutes of runtime; run explicitly with --ignored"]
fn gpu_speedup_at_512k_tuples() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 19, 1.0, 42));
    let cfg = JoinConfig::from(GpuJoinConfig::default());
    let gbase = skewjoin::run_join(
        Algorithm::Gpu(GpuAlgorithm::Gbase),
        &w.r,
        &w.s,
        &cfg,
        SinkSpec::default(),
    )
    .unwrap();
    let gsh = skewjoin::run_join(
        Algorithm::Gpu(GpuAlgorithm::Gsh),
        &w.r,
        &w.s,
        &cfg,
        SinkSpec::default(),
    )
    .unwrap();
    assert_eq!(gbase.result_count, gsh.result_count);
    assert!(
        gbase.simulated_cycles > gsh.simulated_cycles * 5,
        "only {:.1}× at 512k tuples",
        gbase.simulated_cycles as f64 / gsh.simulated_cycles as f64
    );
}

/// Memory boundary: the simulated 40 GB device must accept tables that fit
/// and reject tables that do not (the paper's 560 M-tuple run uses 38.5 GB).
#[test]
#[ignore = "allocates multi-GB buffers"]
fn gpu_memory_boundary() {
    // 2 × 1.5G-tuple tables = 24 GB of tuples + partition buffers > 40 GB.
    // Use the allocation path only (no join) via a tiny spec check instead:
    let spec = DeviceSpec::a100();
    let mut device = skewjoin::gpu_sim::Device::new(spec);
    // 40 GB capacity: five 1 GB buffers fit, a sixth 36 GB one does not.
    let gb = 1usize << 30;
    for _ in 0..5 {
        assert!(device.memory.alloc(gb / 8, 8).is_some());
    }
    assert!(device.memory.alloc(36 * gb / 8, 8).is_none());
    assert_eq!(device.memory.high_water_bytes(), 5 * gb);
}
