//! CPU ↔ GPU cross-validation under varied GPU configurations: device
//! specs, block sizes, explicit radix fan-outs, and skew parameters must
//! never change the result set.

use skewjoin::common::hash::RadixConfig;
use skewjoin::prelude::*;

fn cpu_truth(r: &Relation, s: &Relation) -> (u64, u64) {
    let cfg = JoinConfig::from(CpuJoinConfig::with_threads(4));
    let stats = skewjoin::run_join(
        Algorithm::Cpu(CpuAlgorithm::Csh),
        r,
        s,
        &cfg,
        SinkSpec::Count,
    )
    .unwrap();
    (stats.result_count, stats.checksum)
}

fn check_gpu(r: &Relation, s: &Relation, gpu: &GpuJoinConfig, label: &str) {
    let (count, checksum) = cpu_truth(r, s);
    let cfg = JoinConfig::from(gpu.clone());
    for algo in GpuAlgorithm::ALL {
        let stats = skewjoin::run_join(algo.into(), r, s, &cfg, SinkSpec::Count)
            .unwrap_or_else(|e| panic!("{label}/{algo}: {e}"));
        assert_eq!(stats.result_count, count, "{label}/{algo} count");
        assert_eq!(stats.checksum, checksum, "{label}/{algo} checksum");
    }
}

#[test]
fn agreement_on_a100_profile() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(1 << 13, 0.9, 3));
    check_gpu(&w.r, &w.s, &GpuJoinConfig::default(), "a100");
}

#[test]
fn agreement_across_block_dims() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 0.8, 5));
    // The tiny test device caps blocks at 256 threads.
    for block_dim in [32, 128, 256] {
        let cfg = GpuJoinConfig {
            spec: DeviceSpec::tiny(1 << 26),
            block_dim,
            ..GpuJoinConfig::default()
        };
        check_gpu(&w.r, &w.s, &cfg, &format!("block_dim={block_dim}"));
    }
}

#[test]
fn agreement_with_explicit_radix() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 1.0, 7));
    for bits in [3, 8] {
        let cfg = GpuJoinConfig {
            spec: DeviceSpec::tiny(1 << 26),
            block_dim: 64,
            radix: Some(RadixConfig::two_pass(bits)),
            ..GpuJoinConfig::default()
        };
        check_gpu(&w.r, &w.s, &cfg, &format!("radix={bits}"));
    }
}

#[test]
fn agreement_with_tiny_table_capacity() {
    // Force sub-list decomposition (Gbase) and skew splitting (GSH) even at
    // small scale by shrinking the table capacity.
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 1.0, 11));
    let cfg = GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        table_capacity: Some(128),
        ..GpuJoinConfig::default()
    };
    check_gpu(&w.r, &w.s, &cfg, "capacity=128");
}

#[test]
fn agreement_with_aggressive_skew_params() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 0.9, 13));
    let mut cfg = GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        table_capacity: Some(256),
        ..GpuJoinConfig::default()
    };
    cfg.skew.sample_rate = 0.2;
    cfg.skew.top_k = 8;
    check_gpu(&w.r, &w.s, &cfg, "aggressive-skew");
}

#[test]
fn gpu_memory_high_water_reported() {
    // Verify the simulator's memory accounting through a join: two tables
    // plus partition buffers must be reflected in the high-water mark.
    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 0.5, 17));
    let cfg = GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 24),
        block_dim: 64,
        ..GpuJoinConfig::default()
    };
    // Runs without GpuResourceExhausted.
    let jc = JoinConfig::from(cfg);
    for algo in GpuAlgorithm::ALL {
        skewjoin::run_join(algo.into(), &w.r, &w.s, &jc, SinkSpec::Count).unwrap();
    }
    // When memory cannot hold the tables, the degradation ladder falls back
    // to the CPU — still correct, with the fallback recorded in the trace.
    let small = JoinConfig::from(GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 10),
        block_dim: 64,
        ..GpuJoinConfig::default()
    });
    let stats = skewjoin::run_join(
        Algorithm::Gpu(GpuAlgorithm::Gsh),
        &w.r,
        &w.s,
        &small,
        SinkSpec::Count,
    )
    .unwrap();
    assert!(
        stats
            .trace
            .degradations
            .iter()
            .any(|d| d.contains("GSH→CSH")),
        "degradations: {:?}",
        stats.trace.degradations
    );
    // The underlying GPU join still reports the typed error directly.
    let err = skewjoin::gpu::gsh_join(&w.r, &w.s, &small.gpu, |_| {
        skewjoin::common::CountingSink::new()
    })
    .unwrap_err();
    assert!(matches!(err, JoinError::GpuResourceExhausted(_)));
}

#[test]
fn gpu_volcano_sink_counts_match() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 0.9, 19));
    let cfg = JoinConfig::from(GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        ..GpuJoinConfig::default()
    });
    for algo in GpuAlgorithm::ALL {
        let count = skewjoin::run_join(algo.into(), &w.r, &w.s, &cfg, SinkSpec::Count)
            .unwrap()
            .result_count;
        let volcano = skewjoin::run_join(
            algo.into(),
            &w.r,
            &w.s,
            &cfg,
            SinkSpec::Volcano { capacity: 32 },
        )
        .unwrap()
        .result_count;
        assert_eq!(count, volcano, "{algo}");
    }
}

#[test]
fn exact_gpu_detection_matches_sampled() {
    use skewjoin::gpu::config::GpuDetectionMode;
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 1.0, 23));
    let mut sampled_cfg = GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        table_capacity: Some(256),
        ..GpuJoinConfig::default()
    };
    let mut exact_cfg = sampled_cfg.clone();
    sampled_cfg.skew.detection = GpuDetectionMode::Sampled;
    exact_cfg.skew.detection = GpuDetectionMode::Exact;
    let gsh = Algorithm::Gpu(GpuAlgorithm::Gsh);
    let a = skewjoin::run_join(
        gsh,
        &w.r,
        &w.s,
        &JoinConfig::from(sampled_cfg),
        SinkSpec::Count,
    )
    .unwrap();
    let b = skewjoin::run_join(
        gsh,
        &w.r,
        &w.s,
        &JoinConfig::from(exact_cfg),
        SinkSpec::Count,
    )
    .unwrap();
    assert_eq!(a.result_count, b.result_count);
    assert_eq!(a.checksum, b.checksum);
    // Exact detection can only find at least as many true heavy keys.
    assert!(b.skewed_keys_detected >= a.skewed_keys_detected);
}
