//! All five join algorithms must produce exactly the same result set as the
//! nested-loop reference, across table sizes, skew levels, thread counts,
//! and partitioning configurations.

use skewjoin::common::hash::RadixConfig;
use skewjoin::common::CountingSink;
use skewjoin::cpu::reference_join;
use skewjoin::prelude::*;

fn reference(r: &Relation, s: &Relation) -> (u64, u64) {
    let mut sink = CountingSink::new();
    let stats = reference_join(r, s, &mut sink);
    (stats.result_count, stats.checksum)
}

fn gpu_cfg() -> GpuJoinConfig {
    GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        ..GpuJoinConfig::default()
    }
}

fn check_all(r: &Relation, s: &Relation, cpu_cfg: &CpuJoinConfig, label: &str) {
    let (count, checksum) = reference(r, s);
    let cfg = JoinConfig {
        cpu: cpu_cfg.clone(),
        gpu: gpu_cfg(),
    };
    for algo in Algorithm::ALL {
        let stats = skewjoin::run_join(algo, r, s, &cfg, SinkSpec::Count)
            .unwrap_or_else(|e| panic!("{label}/{algo}: {e}"));
        assert_eq!(stats.result_count, count, "{label}/{algo} count");
        assert_eq!(stats.checksum, checksum, "{label}/{algo} checksum");
    }
}

#[test]
fn agreement_across_sizes_and_skews() {
    let cfg = CpuJoinConfig::with_threads(4);
    for &tuples in &[257usize, 1024, 4096] {
        for &zipf in &[0.0, 0.5, 1.0] {
            let w = PaperWorkload::generate(WorkloadSpec::paper(tuples, zipf, 1234));
            check_all(&w.r, &w.s, &cfg, &format!("n={tuples} z={zipf}"));
        }
    }
}

#[test]
fn agreement_with_unequal_table_sizes() {
    let dist = ZipfWorkload::new(2000, 0.8, 9);
    let r = dist.generate_table(500, 10);
    let s = dist.generate_table(3000, 11);
    check_all(&r, &s, &CpuJoinConfig::with_threads(3), "unequal");
}

#[test]
fn agreement_across_thread_counts() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 0.9, 77));
    for threads in [1, 2, 7, 16] {
        let cfg = CpuJoinConfig::with_threads(threads);
        check_all(&w.r, &w.s, &cfg, &format!("threads={threads}"));
    }
}

#[test]
fn agreement_across_radix_configs() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 0.7, 99));
    for bits in [2, 6, 10] {
        let mut cfg = CpuJoinConfig::with_threads(4);
        cfg.radix = RadixConfig::two_pass(bits);
        check_all(&w.r, &w.s, &cfg, &format!("bits={bits}"));
    }
    // Single-pass radix.
    let mut cfg = CpuJoinConfig::with_threads(4);
    cfg.radix = RadixConfig::single_pass(5);
    check_all(&w.r, &w.s, &cfg, "single-pass");
}

#[test]
fn agreement_on_disjoint_key_sets() {
    // No key overlaps: every algorithm must report zero results.
    let r = Relation::from_keys(&(0..1000u32).map(|i| i * 2).collect::<Vec<_>>());
    let s = Relation::from_keys(&(0..1000u32).map(|i| i * 2 + 1).collect::<Vec<_>>());
    let (count, _) = reference(&r, &s);
    assert_eq!(count, 0);
    check_all(&r, &s, &CpuJoinConfig::with_threads(4), "disjoint");
}

#[test]
fn agreement_on_pathological_single_key() {
    let r = Relation::from_tuples(vec![Tuple::new(0xFFFF_FFFF, 1); 777]);
    let s = Relation::from_tuples(vec![Tuple::new(0xFFFF_FFFF, 2); 333]);
    check_all(&r, &s, &CpuJoinConfig::with_threads(4), "single-key");
}

#[test]
fn agreement_on_foreign_key_join() {
    use skewjoin::datagen::uniform::{foreign_key_table, primary_key_table};
    let pk = primary_key_table(2000, 5);
    let fk = foreign_key_table(&pk, 6000, 6);
    let (count, _) = reference(&pk, &fk);
    assert_eq!(count, 6000, "every FK tuple matches exactly once");
    check_all(&pk, &fk, &CpuJoinConfig::with_threads(4), "pk-fk");
}
