//! Output-sink semantics across the join implementations: materialized
//! result sets equal the reference result set exactly (not just by count),
//! and the volcano ring behaves as §III describes.

use std::collections::HashMap;

use skewjoin::common::sink::OutputTuple;
use skewjoin::common::{CountingSink, MaterializeSink, VolcanoSink};
use skewjoin::cpu::{cbase_join, csh_join, npj_join, reference_join, CpuJoinConfig};
use skewjoin::gpu::{gbase_join, gsh_join, GpuJoinConfig};
use skewjoin::prelude::*;

/// Multiset of output tuples, for exact result-set comparison.
fn multiset(results: impl IntoIterator<Item = OutputTuple>) -> HashMap<OutputTuple, usize> {
    let mut m = HashMap::new();
    for t in results {
        *m.entry(t).or_insert(0) += 1;
    }
    m
}

fn reference_set(r: &Relation, s: &Relation) -> HashMap<OutputTuple, usize> {
    let mut sink = MaterializeSink::new();
    reference_join(r, s, &mut sink);
    multiset(sink.into_results())
}

fn workload() -> (Relation, Relation) {
    let w = PaperWorkload::generate(WorkloadSpec::paper(1500, 0.9, 21));
    (w.r, w.s)
}

#[test]
fn cbase_materialized_set_matches_reference() {
    let (r, s) = workload();
    let expected = reference_set(&r, &s);
    let outcome = cbase_join(&r, &s, &CpuJoinConfig::with_threads(3), |_| {
        MaterializeSink::new()
    })
    .unwrap();
    let got = multiset(outcome.sinks.into_iter().flat_map(|s| s.into_results()));
    assert_eq!(got, expected);
}

#[test]
fn csh_materialized_set_matches_reference() {
    let (r, s) = workload();
    let expected = reference_set(&r, &s);
    let outcome = csh_join(&r, &s, &CpuJoinConfig::with_threads(3), |_| {
        MaterializeSink::new()
    })
    .unwrap();
    let got = multiset(outcome.sinks.into_iter().flat_map(|s| s.into_results()));
    assert_eq!(got, expected);
}

#[test]
fn npj_materialized_set_matches_reference() {
    let (r, s) = workload();
    let expected = reference_set(&r, &s);
    let outcome = npj_join(&r, &s, &CpuJoinConfig::with_threads(3), |_| {
        MaterializeSink::new()
    })
    .unwrap();
    let got = multiset(outcome.sinks.into_iter().flat_map(|s| s.into_results()));
    assert_eq!(got, expected);
}

#[test]
fn gpu_materialized_sets_match_reference() {
    let (r, s) = workload();
    let expected = reference_set(&r, &s);
    let cfg = GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        table_capacity: Some(128),
        ..GpuJoinConfig::default()
    };
    let outcome = gbase_join(&r, &s, &cfg, |_| MaterializeSink::new()).unwrap();
    let got = multiset(outcome.sinks.into_iter().flat_map(|s| s.into_results()));
    assert_eq!(got, expected, "Gbase");

    let outcome = gsh_join(&r, &s, &cfg, |_| MaterializeSink::new()).unwrap();
    let got = multiset(outcome.sinks.into_iter().flat_map(|s| s.into_results()));
    assert_eq!(got, expected, "GSH");
}

#[test]
fn volcano_ring_bounds_memory_but_counts_everything() {
    let (r, s) = workload();
    let capacity = 16;
    let outcome = csh_join(&r, &s, &CpuJoinConfig::with_threads(2), |_| {
        VolcanoSink::new(capacity)
    })
    .unwrap();
    let mut truth = CountingSink::new();
    let ref_stats = reference_join(&r, &s, &mut truth);
    assert_eq!(outcome.stats.result_count, ref_stats.result_count);
    for sink in &outcome.sinks {
        assert!(sink.buffer().len() <= capacity);
    }
}

#[test]
fn per_thread_sinks_partition_the_output() {
    // The sum of per-sink counts is the total; no result is emitted twice
    // across threads (already implied by count+checksum equality, but make
    // the per-sink view explicit).
    let (r, s) = workload();
    let outcome = csh_join(&r, &s, &CpuJoinConfig::with_threads(4), |_| {
        CountingSink::new()
    })
    .unwrap();
    let sum: u64 = outcome.sinks.iter().map(|s| s.count()).sum();
    assert_eq!(sum, outcome.stats.result_count);
    assert_eq!(outcome.sinks.len(), 4);
}
