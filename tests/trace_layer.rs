//! Trace-layer invariants across every algorithm: a small skewed join must
//! produce a non-empty per-phase trace whose counters are internally
//! consistent — partition phases conserve tuples, results counters add up
//! to the reported total, simulated device cycles dominate the busiest
//! block, and skew-aware algorithms report the keys they detected.

use skewjoin::common::trace::counter;
use skewjoin::common::{JoinStats, SinkSpec, Trace};
use skewjoin::prelude::*;
use skewjoin_integration::{cpu_config, gpu_config, CaseSpec};

fn spec() -> CaseSpec {
    CaseSpec {
        seed: 77,
        size: 4000,
        zipf: 1.0,
        threads: 3,
    }
}

/// Runs every algorithm on the same small, heavily skewed workload and
/// returns the stats, labelled.
fn run_all() -> Vec<JoinStats> {
    let spec = spec();
    let w = PaperWorkload::generate(WorkloadSpec::paper(spec.size, spec.zipf, spec.seed));
    let cfg = JoinConfig {
        cpu: cpu_config(spec),
        gpu: gpu_config(spec),
    };
    let mut all = Vec::new();
    for algo in Algorithm::ALL {
        all.push(skewjoin::run_join(algo, &w.r, &w.s, &cfg, SinkSpec::Count).unwrap());
    }
    all
}

/// Sum of `results` counters plus CSH's early-emitted skew results.
fn traced_results(trace: &Trace) -> u64 {
    let mut total: u64 = trace
        .phases
        .iter()
        .filter_map(|p| p.get(counter::RESULTS))
        .sum();
    if let Some(skew) = trace.get("partition_s", "skew_results") {
        total += skew;
    }
    total
}

#[test]
fn every_algorithm_emits_a_nonempty_trace() {
    for stats in run_all() {
        assert!(
            !stats.trace.is_empty(),
            "{} emitted an empty trace",
            stats.algorithm
        );
        assert!(
            !stats.trace.phases.is_empty(),
            "{} recorded no phases",
            stats.algorithm
        );
    }
}

#[test]
fn partition_phases_conserve_tuples() {
    for stats in run_all() {
        for phase in &stats.trace.phases {
            if let (Some(i), Some(o)) = (
                phase.get(counter::TUPLES_IN),
                phase.get(counter::TUPLES_OUT),
            ) {
                assert_eq!(
                    i, o,
                    "{} phase {} lost or duplicated tuples",
                    stats.algorithm, phase.name
                );
            }
        }
    }
}

#[test]
fn traced_results_match_reported_totals() {
    for stats in run_all() {
        assert_eq!(
            traced_results(&stats.trace),
            stats.result_count,
            "{} trace results disagree with stats.result_count",
            stats.algorithm
        );
    }
}

#[test]
fn gpu_device_cycles_dominate_busiest_block() {
    let spec = spec();
    let w = PaperWorkload::generate(WorkloadSpec::paper(spec.size, spec.zipf, spec.seed));
    let cfg = JoinConfig::from(gpu_config(spec));
    for algo in GpuAlgorithm::ALL {
        let stats = skewjoin::run_join(algo.into(), &w.r, &w.s, &cfg, SinkSpec::Count).unwrap();
        let mut gpu_phases = 0;
        for phase in &stats.trace.phases {
            let Some(device) = phase.get(counter::DEVICE_CYCLES) else {
                continue;
            };
            gpu_phases += 1;
            let max_block = phase
                .get(counter::MAX_BLOCK_CYCLES)
                .expect("device cycles recorded without max block cycles");
            assert!(
                device >= max_block,
                "{} phase {}: device_cycles {device} < max_block_cycles {max_block}",
                stats.algorithm,
                phase.name
            );
            assert!(
                phase.get(counter::KERNEL_LAUNCHES).unwrap_or(0) > 0,
                "{} phase {} has cycles but no launches",
                stats.algorithm,
                phase.name
            );
        }
        assert!(
            gpu_phases > 0,
            "{} recorded no kernel phases",
            stats.algorithm
        );
        // The trace's per-phase cycles partition the device total.
        let summed: u64 = stats
            .trace
            .phases
            .iter()
            .filter_map(|p| p.get(counter::DEVICE_CYCLES))
            .sum();
        assert!(
            summed <= stats.simulated_cycles,
            "{}: traced cycles {summed} exceed device total {}",
            stats.algorithm,
            stats.simulated_cycles
        );
    }
}

#[test]
fn skew_aware_algorithms_report_detected_keys() {
    for stats in run_all() {
        let name = stats.algorithm.as_str();
        if name != "CSH" && name != "GSH" {
            continue;
        }
        assert!(
            stats.skewed_keys_detected > 0,
            "{name} detected no skew on a zipf-1.0 workload"
        );
        assert_eq!(
            stats.trace.skewed_keys.len(),
            stats.skewed_keys_detected,
            "{name}: trace key list disagrees with skewed_keys_detected"
        );
        for sk in &stats.trace.skewed_keys {
            assert!(
                sk.frequency > 0,
                "{name}: key {} recorded with zero frequency",
                sk.key
            );
        }
    }
}

#[test]
fn scheduler_counters_are_traced_on_cpu_joins() {
    // Every CPU join runs its partition pass through the write-combining
    // scatter and its task loop through the scheduler, so the partition (or
    // probe, for NPJ) phase must carry the new counters. Steal counts are
    // load-dependent and may legitimately be zero; presence is the contract.
    for stats in run_all() {
        let name = stats.algorithm.as_str();
        let phase_with = |c: &str| {
            stats
                .trace
                .phases
                .iter()
                .find(|p| p.get(c).is_some())
                .map(|p| p.name.clone())
        };
        match name {
            "Cbase" | "CSH" => {
                assert!(
                    phase_with(counter::BUFFER_FLUSHES).is_some(),
                    "{name}: no phase recorded buffer_flushes"
                );
                assert!(
                    phase_with(counter::TASKS_STOLEN).is_some(),
                    "{name}: no phase recorded tasks_stolen"
                );
                assert!(
                    phase_with(counter::STEAL_FAILURES).is_some(),
                    "{name}: no phase recorded steal_failures"
                );
            }
            "cbase-npj" => {
                assert!(
                    phase_with(counter::TASKS_STOLEN).is_some(),
                    "{name}: no phase recorded tasks_stolen"
                );
            }
            _ => {} // GPU algorithms do not use the CPU scheduler.
        }
    }
}

#[test]
fn counters_scale_monotonically_with_input() {
    // Doubling the input must not shrink the partition-phase tuple counters:
    // a cheap monotonicity check that catches dropped windows in the
    // launch-log wiring.
    let small = spec();
    let big = CaseSpec {
        size: small.size * 2,
        ..small
    };
    for s in [small, big] {
        let w = PaperWorkload::generate(WorkloadSpec::paper(s.size, s.zipf, s.seed));
        let stats = skewjoin::run_join(
            Algorithm::Cpu(CpuAlgorithm::Cbase),
            &w.r,
            &w.s,
            &JoinConfig::from(cpu_config(s)),
            SinkSpec::Count,
        )
        .unwrap();
        assert_eq!(
            stats.trace.get("partition", counter::TUPLES_IN),
            Some(2 * s.size as u64),
            "size {}",
            s.size
        );
    }
}
