//! Fault recovery at the public API level: injected faults and hostile
//! sinks must surface as typed [`JoinError`]s or recovered (degraded)
//! results — never as hangs or escaped panics.
//!
//! The failpoint registry is process-global, so every test in this binary
//! serializes behind one mutex, and every join runs under a watchdog that
//! converts a hang into a test failure.

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use skewjoin::common::faults::{self, Schedule};
use skewjoin::prelude::*;

/// Serializes all tests in this binary: armed failpoints are visible to
/// every thread in the process.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Disarms every failpoint when a test body ends, even by panic.
#[cfg(feature = "fault-injection")]
struct DisarmOnDrop;

#[cfg(feature = "fault-injection")]
impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        faults::reset(0);
    }
}

/// Runs `f` on a helper thread and fails the test if it outlives the
/// deadline — the difference between "recovered with an error" and
/// "deadlocked the scheduler".
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("join hung past the watchdog deadline instead of recovering")
}

fn workload(zipf: f64, seed: u64) -> PaperWorkload {
    PaperWorkload::generate(WorkloadSpec::paper(4096, zipf, seed))
}

fn cpu_cfg() -> JoinConfig {
    JoinConfig::from(CpuJoinConfig::with_threads(4))
}

/// A sink that panics after a fixed number of emits — a hostile consumer
/// dying in the middle of result production.
struct ExplodingSink {
    remaining: u64,
}

impl OutputSink for ExplodingSink {
    fn emit(&mut self, _key: Key, _r: Payload, _s: Payload) {
        if self.remaining == 0 {
            panic!("sink exploded mid-emit");
        }
        self.remaining -= 1;
    }

    fn count(&self) -> u64 {
        0
    }

    fn checksum(&self) -> u64 {
        0
    }
}

#[test]
fn panicking_sink_mid_emit_is_worker_panicked_on_every_cpu_algorithm() {
    let _guard = lock();
    let w = workload(0.9, 7);
    for algo in [
        CpuAlgorithm::Cbase,
        CpuAlgorithm::CbaseNpj,
        CpuAlgorithm::Csh,
    ] {
        let (r, s) = (w.r.clone(), w.s.clone());
        let err = with_deadline(60, move || {
            skewjoin::run_join_with(
                Algorithm::Cpu(algo),
                &r,
                &s,
                &cpu_cfg(),
                |_worker: usize| ExplodingSink { remaining: 100 },
            )
            .unwrap_err()
        });
        match err {
            JoinError::WorkerPanicked { phase, .. } => {
                assert!(!phase.is_empty(), "{algo:?}: phase must be named");
            }
            other => panic!("{algo:?}: expected WorkerPanicked, got {other:?}"),
        }
    }
}

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;

    fn clean_truth(w: &PaperWorkload) -> (u64, u64) {
        let stats = skewjoin::run_join(
            Algorithm::Cpu(CpuAlgorithm::Cbase),
            &w.r,
            &w.s,
            &cpu_cfg(),
            SinkSpec::Count,
        )
        .unwrap();
        (stats.result_count, stats.checksum)
    }

    #[test]
    fn task_panic_surfaces_as_worker_panicked_not_a_hang() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 11);
        faults::reset(11);
        faults::arm("sched.task.run", Schedule::OnHit(3));
        let (r, s) = (w.r.clone(), w.s.clone());
        let err = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Cbase),
                &r,
                &s,
                &cpu_cfg(),
                SinkSpec::Count,
            )
            .unwrap_err()
        });
        match err {
            JoinError::WorkerPanicked { phase, .. } => {
                assert!(!phase.is_empty());
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn task_panic_mid_volcano_emit_closes_the_channel_instead_of_hanging() {
        // The volcano consumer blocks on a channel fed by worker sinks; a
        // worker dying mid-run must still end with every sender dropped.
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 13);
        faults::reset(13);
        faults::arm("sched.task.run", Schedule::OnHit(5));
        let (r, s) = (w.r.clone(), w.s.clone());
        let err = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Cbase),
                &r,
                &s,
                &cpu_cfg(),
                SinkSpec::Volcano { capacity: 8 },
            )
            .unwrap_err()
        });
        assert!(matches!(err, JoinError::WorkerPanicked { .. }), "{err:?}");
    }

    #[test]
    fn steal_panic_poisons_the_queue_or_the_run_stays_correct() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 17);
        let truth = clean_truth(&w);
        faults::reset(17);
        faults::arm("sched.steal", Schedule::OnHit(1));
        let (r, s) = (w.r.clone(), w.s.clone());
        let result = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Cbase),
                &r,
                &s,
                &cpu_cfg(),
                SinkSpec::Count,
            )
        });
        // Whether a steal ever happens depends on thread timing; the
        // contract is only "typed error or correct result, promptly".
        match result {
            Ok(stats) => assert_eq!((stats.result_count, stats.checksum), truth),
            Err(JoinError::WorkerPanicked { .. }) => {}
            Err(other) => panic!("expected WorkerPanicked or success, got {other:?}"),
        }
    }

    #[test]
    fn gpu_alloc_fault_engages_the_degradation_ladder() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 19);
        let truth = clean_truth(&w);
        faults::reset(19);
        faults::arm("gpu.memory.alloc", Schedule::OnHit(1));
        let cfg = JoinConfig::default();
        let (r, s) = (w.r.clone(), w.s.clone());
        let stats = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Gpu(GpuAlgorithm::Gbase),
                &r,
                &s,
                &cfg,
                SinkSpec::Count,
            )
            .unwrap()
        });
        assert_eq!((stats.result_count, stats.checksum), truth);
        assert!(
            !stats.trace.degradations.is_empty(),
            "the recovered run must record how it degraded"
        );
    }

    #[test]
    fn persistent_gpu_faults_fall_back_to_the_cpu() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 23);
        let truth = clean_truth(&w);
        faults::reset(23);
        faults::arm("gpu.launch", Schedule::Always);
        let cfg = JoinConfig::default();
        let (r, s) = (w.r.clone(), w.s.clone());
        let stats = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Gpu(GpuAlgorithm::Gsh),
                &r,
                &s,
                &cfg,
                SinkSpec::Count,
            )
            .unwrap()
        });
        assert_eq!((stats.result_count, stats.checksum), truth);
        assert!(
            stats
                .trace
                .degradations
                .iter()
                .any(|d| d.contains("GSH→CSH")),
            "degradations: {:?}",
            stats.trace.degradations
        );
    }

    #[test]
    fn skew_misdetection_degrades_gracefully_to_a_correct_result() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(1.1, 29);
        let truth = clean_truth(&w);
        faults::reset(29);
        faults::arm("cpu.skew.detect", Schedule::Always);
        let (r, s) = (w.r.clone(), w.s.clone());
        let stats = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Csh),
                &r,
                &s,
                &cpu_cfg(),
                SinkSpec::Count,
            )
            .unwrap()
        });
        // The hottest key was hidden from the detector; the normal
        // partition path must still join it correctly.
        assert_eq!((stats.result_count, stats.checksum), truth);
    }

    use skewjoin::cpu::{SpillConfig, MIN_SPILL_BUDGET};
    use std::path::{Path, PathBuf};

    /// A fresh per-test scratch parent; the grace driver creates (and must
    /// remove) its own subdirectory inside it.
    fn scratch_parent(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skewjoin-frt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spilling_cfg(scratch: &Path) -> JoinConfig {
        let mut cfg = cpu_cfg();
        cfg.cpu.spill = Some(SpillConfig {
            scratch_dir: Some(scratch.to_path_buf()),
            ..SpillConfig::with_budget(MIN_SPILL_BUDGET)
        });
        cfg
    }

    /// The hygiene half of the spill fault contract: whatever happened, the
    /// scratch parent is empty afterwards.
    fn assert_no_scratch_leak(parent: &Path) {
        let leaked: Vec<_> = std::fs::read_dir(parent)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        let _ = std::fs::remove_dir_all(parent);
        assert!(leaked.is_empty(), "leaked scratch entries: {leaked:?}");
    }

    #[test]
    fn spill_write_fault_is_a_typed_error_with_no_scratch_leak() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 41);
        let scratch = scratch_parent("write");
        faults::reset(41);
        faults::arm("spill.write", Schedule::OnHit(3));
        let cfg = spilling_cfg(&scratch);
        let (r, s) = (w.r.clone(), w.s.clone());
        let err = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Cbase),
                &r,
                &s,
                &cfg,
                SinkSpec::Count,
            )
            .unwrap_err()
        });
        assert!(matches!(err, JoinError::SpillFailed(_)), "{err:?}");
        assert_no_scratch_leak(&scratch);
    }

    #[test]
    fn spill_fault_then_retry_completes_with_the_clean_answer() {
        // The service's retry-once rung in miniature: an OnHit fault is
        // consumed by the failing run, so re-running the same join must
        // succeed and match the in-memory ground truth.
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 43);
        let truth = clean_truth(&w);
        let scratch = scratch_parent("retry");
        faults::reset(43);
        faults::arm("spill.read", Schedule::OnHit(2));
        let cfg = spilling_cfg(&scratch);
        let (r, s) = (w.r.clone(), w.s.clone());
        let (first, second) = with_deadline(120, move || {
            let first = skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Csh),
                &r,
                &s,
                &cfg,
                SinkSpec::Count,
            );
            let second = skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Csh),
                &r,
                &s,
                &cfg,
                SinkSpec::Count,
            );
            (first, second)
        });
        match first {
            Err(JoinError::SpillFailed(_)) => {}
            other => panic!("expected SpillFailed on the first run, got {other:?}"),
        }
        let stats = second.expect("retry after a consumed fault must succeed");
        assert_eq!((stats.result_count, stats.checksum), truth);
        assert_eq!(stats.algorithm, "Grace(cbase-npj)");
        assert_no_scratch_leak(&scratch);
    }

    #[test]
    fn spill_manifest_fault_is_typed_and_never_partial() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 47);
        let scratch = scratch_parent("manifest");
        faults::reset(47);
        faults::arm("spill.manifest", Schedule::OnHit(1));
        let cfg = spilling_cfg(&scratch);
        let (r, s) = (w.r.clone(), w.s.clone());
        let err = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::CbaseNpj),
                &r,
                &s,
                &cfg,
                SinkSpec::Count,
            )
            .unwrap_err()
        });
        assert!(matches!(err, JoinError::SpillFailed(_)), "{err:?}");
        assert_no_scratch_leak(&scratch);
    }

    #[test]
    fn persistent_spill_remove_faults_are_absorbed_and_leak_nothing() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 53);
        let truth = clean_truth(&w);
        let scratch = scratch_parent("remove");
        faults::reset(53);
        faults::arm("spill.remove", Schedule::Always);
        let cfg = spilling_cfg(&scratch);
        let (r, s) = (w.r.clone(), w.s.clone());
        let stats = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Cbase),
                &r,
                &s,
                &cfg,
                SinkSpec::Count,
            )
            .unwrap()
        });
        assert_eq!((stats.result_count, stats.checksum), truth);
        assert!(
            stats
                .trace
                .degradations
                .iter()
                .any(|d| d.contains("scratch removal failed")),
            "degradations: {:?}",
            stats.trace.degradations
        );
        // The RAII guard retries the removal without the failpoint in the
        // way, so even a persistent unlink fault leaves nothing behind.
        assert_no_scratch_leak(&scratch);
    }

    #[test]
    fn forced_overflows_are_absorbed_by_recursive_splitting_or_typed() {
        let _guard = lock();
        let _disarm = DisarmOnDrop;
        let w = workload(0.9, 31);
        let truth = clean_truth(&w);
        faults::reset(31);
        faults::arm("cpu.partition.overflow", Schedule::OnHit(2));
        let (r, s) = (w.r.clone(), w.s.clone());
        let result = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Cbase),
                &r,
                &s,
                &cpu_cfg(),
                SinkSpec::Count,
            )
        });
        match result {
            Ok(stats) => assert_eq!((stats.result_count, stats.checksum), truth),
            Err(JoinError::PartitionOverflow(_)) => {}
            Err(other) => panic!("expected success or PartitionOverflow, got {other:?}"),
        }
    }
}

#[cfg(not(feature = "fault-injection"))]
mod disabled {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn armed_failpoints_are_noops_without_the_feature() {
        let _guard = lock();
        assert!(!faults::ENABLED);
        let w = workload(0.9, 37);
        faults::reset(37);
        for site in skewjoin_integration::chaos::FAILPOINT_SITES {
            faults::arm(site, Schedule::Always);
        }
        let stats = with_deadline(60, move || {
            skewjoin::run_join(
                Algorithm::Cpu(CpuAlgorithm::Csh),
                &w.r,
                &w.s,
                &cpu_cfg(),
                SinkSpec::Count,
            )
            .unwrap()
        });
        assert!(stats.result_count > 0);
        assert_eq!(
            faults::hits("sched.task.run"),
            0,
            "no-op sites count no hits"
        );
        faults::reset(0);
    }
}
