//! Determinism guarantees and relation I/O round-trips through real joins.

use skewjoin::datagen::io;
use skewjoin::prelude::*;

#[test]
fn generated_workloads_are_deterministic() {
    let a = PaperWorkload::generate(WorkloadSpec::paper(4096, 0.8, 123));
    let b = PaperWorkload::generate(WorkloadSpec::paper(4096, 0.8, 123));
    assert_eq!(a.r, b.r);
    assert_eq!(a.s, b.s);
    let c = PaperWorkload::generate(WorkloadSpec::paper(4096, 0.8, 124));
    assert_ne!(a.r, c.r);
}

#[test]
fn join_results_are_deterministic_across_runs_and_threads() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(4096, 1.0, 9));
    let mut counts = std::collections::HashSet::new();
    let mut checksums = std::collections::HashSet::new();
    let csh = Algorithm::Cpu(CpuAlgorithm::Csh);
    for threads in [1, 3, 8] {
        for _ in 0..2 {
            let cfg = JoinConfig::from(CpuJoinConfig::with_threads(threads));
            let s = skewjoin::run_join(csh, &w.r, &w.s, &cfg, SinkSpec::Count).unwrap();
            counts.insert(s.result_count);
            checksums.insert(s.checksum);
        }
    }
    assert_eq!(counts.len(), 1, "count varied across runs/threads");
    assert_eq!(checksums.len(), 1, "checksum varied across runs/threads");
}

#[test]
fn gpu_simulated_cycles_are_deterministic() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 0.9, 11));
    let cfg = JoinConfig::from(GpuJoinConfig {
        spec: DeviceSpec::tiny(1 << 26),
        block_dim: 64,
        ..GpuJoinConfig::default()
    });
    let gsh = Algorithm::Gpu(GpuAlgorithm::Gsh);
    let a = skewjoin::run_join(gsh, &w.r, &w.s, &cfg, SinkSpec::Count).unwrap();
    let b = skewjoin::run_join(gsh, &w.r, &w.s, &cfg, SinkSpec::Count).unwrap();
    assert_eq!(a.simulated_cycles, b.simulated_cycles);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn binary_roundtrip_preserves_join_results() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(2048, 0.9, 13));
    let dir = std::env::temp_dir();
    let rp = dir.join(format!("skewjoin-it-{}-r.skjr", std::process::id()));
    let sp = dir.join(format!("skewjoin-it-{}-s.skjr", std::process::id()));
    io::write_binary(&w.r, &rp).unwrap();
    io::write_binary(&w.s, &sp).unwrap();
    let r2 = io::read_binary(&rp).unwrap();
    let s2 = io::read_binary(&sp).unwrap();
    std::fs::remove_file(&rp).ok();
    std::fs::remove_file(&sp).ok();

    let cfg = JoinConfig::from(CpuJoinConfig::with_threads(2));
    let csh = Algorithm::Cpu(CpuAlgorithm::Csh);
    let orig = skewjoin::run_join(csh, &w.r, &w.s, &cfg, SinkSpec::Count).unwrap();
    let reloaded = skewjoin::run_join(csh, &r2, &s2, &cfg, SinkSpec::Count).unwrap();
    assert_eq!(orig.result_count, reloaded.result_count);
    assert_eq!(orig.checksum, reloaded.checksum);
}

#[test]
fn csv_roundtrip_preserves_join_results() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(512, 1.0, 17));
    let dir = std::env::temp_dir();
    let rp = dir.join(format!("skewjoin-it-{}-r.csv", std::process::id()));
    io::write_csv(&w.r, &rp).unwrap();
    let r2 = io::read_csv(&rp, 0, Some(1)).unwrap();
    std::fs::remove_file(&rp).ok();
    assert_eq!(w.r.tuples(), r2.tuples());
}

#[test]
fn stats_serialize_to_json() {
    let w = PaperWorkload::generate(WorkloadSpec::paper(1024, 0.7, 19));
    let cfg = JoinConfig::from(CpuJoinConfig::with_threads(2));
    let stats = skewjoin::run_join(
        Algorithm::Cpu(CpuAlgorithm::Csh),
        &w.r,
        &w.s,
        &cfg,
        SinkSpec::Count,
    )
    .unwrap();
    let json = stats.to_json().to_string();
    assert!(json.contains("\"algorithm\""));
    assert!(json.contains("CSH"));
    let parsed = skewjoin::common::Json::parse(&json).expect("parse");
    let back = JoinStats::from_json(&parsed).expect("deserialize");
    assert_eq!(back.result_count, stats.result_count);
    assert_eq!(back.phases.total(), stats.phases.total());
    // The embedded per-phase trace survives the round trip too.
    assert_eq!(back.trace, stats.trace);
}
