//! Replays every minimized repro committed to `tests/fuzz_corpus/` and runs
//! a small deterministic fuzz smoke so the harness itself stays honest.
//!
//! Each corpus file is one shrunk case that once violated an oracle; the
//! fix that closed it must keep it green forever. New violations found by
//! the `fuzz` binary land here via `--write-corpus`.

use std::time::Duration;

use skewjoin_integration::skewfuzz::frames::FrameHarness;
use skewjoin_integration::skewfuzz::{corpus_dir, load_corpus, replay, run_fuzz, FuzzOptions};

const REPLAY_TIMEOUT: Duration = Duration::from_secs(60);

/// Every committed repro must pass (a typed error is a pass; a violation is
/// a regression of a previously fixed bug).
#[test]
fn corpus_replays_clean() {
    let dir = corpus_dir();
    let entries = load_corpus(&dir);
    let needs_harness = entries
        .iter()
        .any(|e| matches!(e, Ok(skewjoin_integration::skewfuzz::CorpusEntry::Frame(_))));
    let harness = if needs_harness {
        Some(FrameHarness::start().expect("loopback service for frame repros"))
    } else {
        None
    };
    let mut regressions = Vec::new();
    for entry in entries {
        match entry {
            Ok(entry) => {
                if let Some(details) = replay(&entry, harness.as_ref(), REPLAY_TIMEOUT) {
                    regressions.push(format!("{}: {details}", entry.name()));
                }
            }
            Err(e) => regressions.push(format!("unreadable corpus file: {e}")),
        }
    }
    assert!(
        regressions.is_empty(),
        "fuzz corpus regressions:\n{}",
        regressions.join("\n")
    );
}

/// A short fixed-seed fuzz run rides along with `cargo test`: 48 cases is
/// enough to notice a harness-breaking change (or a blatant new bug)
/// without dominating the suite's wall clock.
#[test]
fn inline_fuzz_smoke_finds_nothing() {
    let opts = FuzzOptions {
        cases: 48,
        seed: 7,
        max_size: 20_000,
        timeout: Duration::from_secs(60),
        frame_share: 4,
    };
    let report = run_fuzz(&opts, &mut |_: usize, _: &str, _: usize| {});
    assert_eq!(report.join_cases + report.frame_cases, 48);
    assert!(
        report.violations.is_empty(),
        "fuzz smoke violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
