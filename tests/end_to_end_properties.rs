//! Property-based end-to-end tests: for *arbitrary* small tables, every
//! algorithm on both devices must agree with the nested-loop reference on
//! count and checksum, and structural invariants must hold.

use proptest::prelude::*;

use skewjoin::common::CountingSink;
use skewjoin::cpu::reference_join;
use skewjoin::prelude::*;

/// Arbitrary relation: up to 400 tuples over a small key domain (forcing
/// collisions and skew) mixed with a few wide-range keys.
fn arb_relation(max_len: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(
        prop_oneof![
            3 => 0u32..16,          // hot, collision-heavy domain
            1 => 0u32..u32::MAX,    // arbitrary keys
        ],
        0..max_len,
    )
    .prop_map(|keys| Relation::from_keys(&keys))
}

fn reference(r: &Relation, s: &Relation) -> (u64, u64) {
    let mut sink = CountingSink::new();
    let stats = reference_join(r, s, &mut sink);
    (stats.result_count, stats.checksum)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn cpu_algorithms_agree_with_reference(
        r in arb_relation(400),
        s in arb_relation(400),
        threads in 1usize..5,
    ) {
        let (count, checksum) = reference(&r, &s);
        let cfg = CpuJoinConfig::with_threads(threads);
        for algo in CpuAlgorithm::ALL {
            let stats = skewjoin::run_cpu_join(algo, &r, &s, &cfg, SinkSpec::Count).unwrap();
            prop_assert_eq!(stats.result_count, count, "{} count", algo);
            prop_assert_eq!(stats.checksum, checksum, "{} checksum", algo);
        }
    }

    #[test]
    fn gpu_algorithms_agree_with_reference(
        r in arb_relation(250),
        s in arb_relation(250),
    ) {
        let (count, checksum) = reference(&r, &s);
        let cfg = GpuJoinConfig {
            spec: DeviceSpec::tiny(1 << 24),
            block_dim: 64,
            table_capacity: Some(64), // exercise sub-lists & splits often
            ..GpuJoinConfig::default()
        };
        for algo in GpuAlgorithm::ALL {
            let stats = skewjoin::run_gpu_join(algo, &r, &s, &cfg, SinkSpec::Count).unwrap();
            prop_assert_eq!(stats.result_count, count, "{} count", algo);
            prop_assert_eq!(stats.checksum, checksum, "{} checksum", algo);
        }
    }

    #[test]
    fn join_count_formula_holds(r in arb_relation(300), s in arb_relation(300)) {
        // |R ⋈ S| = Σ_k f_R(k) · f_S(k)
        use std::collections::HashMap;
        let mut fr: HashMap<u32, u64> = HashMap::new();
        for t in r.iter() { *fr.entry(t.key).or_default() += 1; }
        let mut fs: HashMap<u32, u64> = HashMap::new();
        for t in s.iter() { *fs.entry(t.key).or_default() += 1; }
        let expected: u64 = fr.iter()
            .map(|(k, &c)| c * fs.get(k).copied().unwrap_or(0))
            .sum();
        let (count, _) = reference(&r, &s);
        prop_assert_eq!(count, expected);
    }

    #[test]
    fn csh_skew_split_is_exact(r in arb_relation(300), s in arb_relation(300)) {
        // skew_path_results + NM results == total; never double-counted.
        let cfg = CpuJoinConfig::with_threads(2);
        let stats = skewjoin::run_cpu_join(CpuAlgorithm::Csh, &r, &s, &cfg, SinkSpec::Count)
            .unwrap();
        let (count, _) = reference(&r, &s);
        prop_assert_eq!(stats.result_count, count);
        prop_assert!(stats.skew_path_results <= stats.result_count);
    }

    #[test]
    fn volcano_capacity_never_changes_results(
        r in arb_relation(200),
        s in arb_relation(200),
        capacity in 1usize..512,
    ) {
        let cfg = CpuJoinConfig::with_threads(2);
        let a = skewjoin::run_cpu_join(CpuAlgorithm::Csh, &r, &s, &cfg, SinkSpec::Count).unwrap();
        let b = skewjoin::run_cpu_join(
            CpuAlgorithm::Csh, &r, &s, &cfg, SinkSpec::Volcano { capacity },
        ).unwrap();
        prop_assert_eq!(a.result_count, b.result_count);
    }
}
