//! Property-style end-to-end tests over deterministic pseudo-random inputs:
//! for arbitrary small tables, every algorithm on both devices must agree
//! with the nested-loop reference on count and checksum, and structural
//! invariants must hold. Each property runs over a fixed battery of seeded
//! cases (collision-heavy key domains mixed with wide-range keys), so
//! failures reproduce exactly.

use skewjoin::common::CountingSink;
use skewjoin::cpu::reference_join;
use skewjoin::datagen::Rng;
use skewjoin::prelude::*;

/// Deterministic "arbitrary" relation: up to `max_len` tuples over a small
/// hot key domain (forcing collisions and skew) mixed with a few wide-range
/// keys — the same shape the earlier property-based suite generated.
fn arb_relation(rng: &mut Rng, max_len: usize) -> Relation {
    let len = rng.below(max_len + 1);
    let keys: Vec<Key> = (0..len)
        .map(|_| {
            if rng.below(4) < 3 {
                rng.next_u32() % 16 // hot, collision-heavy domain
            } else {
                rng.next_u32() // arbitrary keys
            }
        })
        .collect();
    Relation::from_keys(&keys)
}

fn reference(r: &Relation, s: &Relation) -> (u64, u64) {
    let mut sink = CountingSink::new();
    let stats = reference_join(r, s, &mut sink);
    (stats.result_count, stats.checksum)
}

const CASES: u64 = 24;

#[test]
fn cpu_algorithms_agree_with_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xE2E_0001 + case);
        let r = arb_relation(&mut rng, 400);
        let s = arb_relation(&mut rng, 400);
        let threads = 1 + rng.below(4);
        let cfg = JoinConfig::from(CpuJoinConfig::with_threads(threads));
        let (count, checksum) = reference(&r, &s);
        for algo in CpuAlgorithm::ALL {
            let stats = skewjoin::run_join(algo.into(), &r, &s, &cfg, SinkSpec::Count).unwrap();
            assert_eq!(stats.result_count, count, "case {case}: {algo:?} count");
            assert_eq!(stats.checksum, checksum, "case {case}: {algo:?} checksum");
        }
    }
}

#[test]
fn gpu_algorithms_agree_with_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xE2E_0002 + case);
        let r = arb_relation(&mut rng, 250);
        let s = arb_relation(&mut rng, 250);
        let (count, checksum) = reference(&r, &s);
        let cfg = JoinConfig::from(GpuJoinConfig {
            spec: DeviceSpec::tiny(1 << 24),
            block_dim: 64,
            table_capacity: Some(64), // exercise sub-lists & splits often
            ..GpuJoinConfig::default()
        });
        for algo in GpuAlgorithm::ALL {
            let stats = skewjoin::run_join(algo.into(), &r, &s, &cfg, SinkSpec::Count).unwrap();
            assert_eq!(stats.result_count, count, "case {case}: {algo:?} count");
            assert_eq!(stats.checksum, checksum, "case {case}: {algo:?} checksum");
        }
    }
}

#[test]
fn join_count_formula_holds() {
    // |R ⋈ S| = Σ_k f_R(k) · f_S(k)
    use std::collections::HashMap;
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xE2E_0003 + case);
        let r = arb_relation(&mut rng, 300);
        let s = arb_relation(&mut rng, 300);
        let mut fr: HashMap<u32, u64> = HashMap::new();
        for t in r.tuples() {
            *fr.entry(t.key).or_default() += 1;
        }
        let mut fs: HashMap<u32, u64> = HashMap::new();
        for t in s.tuples() {
            *fs.entry(t.key).or_default() += 1;
        }
        let expected: u64 = fr
            .iter()
            .map(|(k, &c)| c * fs.get(k).copied().unwrap_or(0))
            .sum();
        let (count, _) = reference(&r, &s);
        assert_eq!(count, expected, "case {case}");
    }
}

#[test]
fn csh_skew_split_is_exact() {
    // skew_path_results + NM results == total; never double-counted.
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xE2E_0004 + case);
        let r = arb_relation(&mut rng, 300);
        let s = arb_relation(&mut rng, 300);
        let cfg = JoinConfig::from(CpuJoinConfig::with_threads(2));
        let stats = skewjoin::run_join(
            Algorithm::Cpu(CpuAlgorithm::Csh),
            &r,
            &s,
            &cfg,
            SinkSpec::Count,
        )
        .unwrap();
        let (count, _) = reference(&r, &s);
        assert_eq!(stats.result_count, count, "case {case}");
        assert!(stats.skew_path_results <= stats.result_count, "case {case}");
    }
}

#[test]
fn volcano_capacity_never_changes_results() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xE2E_0005 + case);
        let r = arb_relation(&mut rng, 200);
        let s = arb_relation(&mut rng, 200);
        let capacity = 1 + rng.below(511);
        let cfg = JoinConfig::from(CpuJoinConfig::with_threads(2));
        let csh = Algorithm::Cpu(CpuAlgorithm::Csh);
        let a = skewjoin::run_join(csh, &r, &s, &cfg, SinkSpec::Count).unwrap();
        let b = skewjoin::run_join(csh, &r, &s, &cfg, SinkSpec::Volcano { capacity }).unwrap();
        assert_eq!(a.result_count, b.result_count, "case {case}");
    }
}
